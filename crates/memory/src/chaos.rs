//! Chaos layer for the threaded runtime: real-thread fault injection and
//! supervised execution.
//!
//! The paper's guarantees are *fault-model* statements: the wait-free
//! snapshot and renaming algorithms must terminate for survivors no matter
//! how many processors crash-stop, and obstruction-free consensus terminates
//! once a processor runs uncontended. The deterministic
//! [`Executor`](crate::Executor) exercises these claims with
//! [`CrashingScheduler`](crate::CrashingScheduler); this module exercises
//! them on **real OS threads**:
//!
//! * a [`FaultPlan`] injects per-processor faults — crash-stop after `k`
//!   shared-memory operations, crash *poised* (the thread parks forever with
//!   a write pending, a real covering), timed stalls simulating preemption
//!   or GC pauses, and panics;
//! * [`run_chaos`] / [`run_chaos_probed`] execute the plan under a
//!   supervisor: worker panics are caught (never poisoning the run), worker
//!   heartbeats are monitored against a wall-clock deadline, and every
//!   processor ends in a structured
//!   [`ProcOutcome`](crate::threaded::ProcOutcome) — the run always returns
//!   a [`ThreadedReport`](crate::threaded::ThreadedReport) with whatever the
//!   survivors produced, never a hang.
//!
//! A poised crash parks its thread *before* the register lock is taken, so
//! the pending write never lands and never blocks survivors — exactly the
//! semantics of a processor crashing while covering a register in the
//! paper's model (the adversary's primitive in Section 2). Parked threads
//! are leaked for the remainder of the process; plans are meant for test
//! and campaign processes, not long-lived servers.
//!
//! ```
//! use fa_memory::chaos::{ChaosConfig, FaultPlan};
//! use fa_memory::threaded::ProcOutcome;
//! use fa_memory::{chaos, Action, Process, StepInput, Wiring};
//!
//! #[derive(Clone)]
//! struct PutGet { input: u32, state: u8 }
//! impl Process for PutGet {
//!     type Value = u32;
//!     type Output = u32;
//!     fn step(&mut self, i: StepInput<u32>) -> Action<u32, u32> {
//!         match (self.state, i) {
//!             (0, _) => { self.state = 1; Action::write(0, self.input) }
//!             (1, _) => { self.state = 2; Action::read(0) }
//!             (2, StepInput::ReadValue(v)) => { self.state = 3; Action::Output(*v) }
//!             _ => Action::Halt,
//!         }
//!     }
//! }
//!
//! let procs = vec![
//!     PutGet { input: 1, state: 0 },
//!     PutGet { input: 2, state: 0 },
//!     PutGet { input: 3, state: 0 },
//! ];
//! // p1 crashes poised: its write to register 0 stays pending forever.
//! let plan = FaultPlan::new(3).crash_poised(1, 0);
//! let report = chaos::run_chaos(
//!     procs,
//!     vec![Wiring::identity(1); 3],
//!     1,
//!     0u32,
//!     &plan,
//!     &ChaosConfig::new(1_000),
//! )
//! .unwrap();
//! assert!(report.outcomes[0].is_completed());
//! assert!(matches!(
//!     report.outcomes[1],
//!     ProcOutcome::Crashed { covering: Some(0), .. }
//! ));
//! assert!(report.outcomes[2].is_completed());
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use fa_obs::{
    ChaosEvent, ChaosKind, Counter, MetricRegistry, NoProbe, OpKind, OutputEvent, Probe, ReadEvent,
    Span, TimingEvent, WriteEvent,
};
use parking_lot::Mutex;

use crate::threaded::{elapsed_ns, ProcOutcome, ThreadedReport};
use crate::{Action, MemoryError, ProcId, Process, StepInput, Versioned, Wiring};

/// A lock-protected register: `Arc`-shared contents plus a write version.
///
/// A read clones the `Arc` handle under the lock (an O(1) critical section —
/// no deep clone of the value while holding the register) and tags it with
/// the version, mirroring [`SharedMemory::read`](crate::SharedMemory::read).
/// A write swaps in a cell the writer allocated *before* taking the lock.
struct RegisterCell<V> {
    value: Arc<V>,
    version: u64,
}

/// One injected fault. Faults count *shared-memory operations* (reads +
/// writes), matching [`CrashingScheduler`](crate::CrashingScheduler)'s
/// step-count semantics on the deterministic executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Crash-stop strictly after `after_ops` operations: the thread exits
    /// before taking operation `after_ops + 1`.
    CrashStop {
        /// Operations completed before the crash.
        after_ops: usize,
    },
    /// Crash *poised*: after `after_ops` operations, the thread parks
    /// forever at its next pending write — a real covering. (If the process
    /// never writes again, the fault never fires.)
    CrashPoised {
        /// Operations completed before the thread may park at a write.
        after_ops: usize,
    },
    /// A one-shot stall of `stall_ns` nanoseconds before operation
    /// `at_op + 1` (simulated preemption / GC pause).
    StallOnce {
        /// Operations completed when the stall fires.
        at_op: usize,
        /// Stall length in nanoseconds.
        stall_ns: u64,
    },
    /// A stall storm: `stall_ns` nanoseconds before every `period`-th
    /// operation.
    StallEvery {
        /// Operations between stalls (must be > 0).
        period: usize,
        /// Stall length in nanoseconds.
        stall_ns: u64,
    },
    /// Panic inside the step loop before operation `at_op + 1`. Caught by
    /// the supervisor and recorded as [`ProcOutcome::Panicked`].
    PanicAt {
        /// Operations completed when the panic fires.
        at_op: usize,
    },
}

/// Per-processor fault schedule for one chaos run.
///
/// Built with chained constructors; processors without faults run normally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Vec<Fault>>,
}

impl FaultPlan {
    /// An empty plan for `n` processors (no faults).
    #[must_use]
    pub fn new(n: usize) -> Self {
        FaultPlan {
            faults: vec![Vec::new(); n],
        }
    }

    /// Number of processors the plan covers.
    #[must_use]
    pub fn num_procs(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(Vec::is_empty)
    }

    /// The faults scheduled for processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn for_proc(&self, p: usize) -> &[Fault] {
        &self.faults[p]
    }

    /// Adds `fault` for processor `p` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for the plan.
    #[must_use]
    pub fn with_fault(mut self, p: usize, fault: Fault) -> Self {
        assert!(
            p < self.faults.len(),
            "processor {p} out of range for a {}-processor fault plan",
            self.faults.len()
        );
        self.faults[p].push(fault);
        self
    }

    /// Crash-stops processor `p` after `after_ops` operations.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn crash_stop(self, p: usize, after_ops: usize) -> Self {
        self.with_fault(p, Fault::CrashStop { after_ops })
    }

    /// Crashes processor `p` poised at its first write after `after_ops`
    /// operations.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn crash_poised(self, p: usize, after_ops: usize) -> Self {
        self.with_fault(p, Fault::CrashPoised { after_ops })
    }

    /// Stalls processor `p` once, for `stall` wall-clock time, at operation
    /// `at_op`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn stall_once(self, p: usize, at_op: usize, stall: Duration) -> Self {
        self.with_fault(
            p,
            Fault::StallOnce {
                at_op,
                stall_ns: duration_ns(stall),
            },
        )
    }

    /// Stalls processor `p` for `stall` before every `period`-th operation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `period == 0`.
    #[must_use]
    pub fn stall_every(self, p: usize, period: usize, stall: Duration) -> Self {
        assert!(period > 0, "stall period must be positive");
        self.with_fault(
            p,
            Fault::StallEvery {
                period,
                stall_ns: duration_ns(stall),
            },
        )
    }

    /// Injects a panic into processor `p`'s step loop at operation `at_op`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn panic_at(self, p: usize, at_op: usize) -> Self {
        self.with_fault(p, Fault::PanicAt { at_op })
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Supervision parameters for a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Per-processor step budget (same meaning as in
    /// [`run_threaded`](crate::threaded::run_threaded)).
    pub max_steps: usize,
    /// Wall-clock deadline for the whole run. Workers that have not
    /// reported when it expires are recorded as
    /// [`ProcOutcome::Stalled`] / [`ProcOutcome::DeadlineExceeded`]
    /// (never joined — the run returns regardless). `None` waits for every
    /// worker to report, which is guaranteed for any plan because injected
    /// crashes report before parking; use a deadline whenever the *algorithm*
    /// may fail to terminate (e.g. consensus under perpetual contention).
    pub deadline: Option<Duration>,
    /// A worker whose last heartbeat is older than this when the deadline
    /// expires is classified [`ProcOutcome::Stalled`] (wedged), younger ones
    /// [`ProcOutcome::DeadlineExceeded`] (alive but too slow).
    pub stall_grace: Duration,
    /// Optional live-metric registry; when attached, each run records the
    /// `chaos.*` metrics (see [`ChaosTelemetry`]). Never affects outcomes.
    pub telemetry: Option<Arc<MetricRegistry>>,
}

impl ChaosConfig {
    /// A config with the given step budget, no deadline, and a 1-second
    /// stall grace.
    #[must_use]
    pub fn new(max_steps: usize) -> Self {
        ChaosConfig {
            max_steps,
            deadline: None,
            stall_grace: Duration::from_secs(1),
            telemetry: None,
        }
    }

    /// Sets the wall-clock deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the stall-classification grace period (builder style).
    #[must_use]
    pub fn with_stall_grace(mut self, grace: Duration) -> Self {
        self.stall_grace = grace;
        self
    }

    /// Attaches a live-metric registry (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, registry: Arc<MetricRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }
}

/// Live-telemetry handles one chaos run records into (`chaos.*` names,
/// shared with the bench binaries and `obs_report` trend tables):
///
/// | name                   | kind    | meaning                                |
/// |------------------------|---------|----------------------------------------|
/// | `chaos.scenarios_done` | counter | supervised runs finished               |
/// | `chaos.steps_total`    | counter | heartbeat step sum across all workers  |
/// | `chaos.supervise`      | span    | report collection until deadline       |
/// | `chaos.collect`        | span    | outcome classification + final memory  |
///
/// All handles record with relaxed atomics; attaching them never changes a
/// run's [`ThreadedReport`].
#[derive(Clone, Debug, Default)]
pub struct ChaosTelemetry {
    /// `chaos.scenarios_done`.
    pub scenarios_done: Counter,
    /// `chaos.steps_total`.
    pub steps_total: Counter,
    /// `chaos.supervise`.
    pub supervise: Span,
    /// `chaos.collect`.
    pub collect: Span,
}

impl ChaosTelemetry {
    /// Resolves the `chaos.*` handles from `registry`.
    #[must_use]
    pub fn from_registry(registry: &MetricRegistry) -> Self {
        ChaosTelemetry {
            scenarios_done: registry.counter("chaos.scenarios_done"),
            steps_total: registry.counter("chaos.steps_total"),
            supervise: registry.span("chaos.supervise"),
            collect: registry.span("chaos.collect"),
        }
    }
}

/// Heartbeat block shared between workers and the supervisor: per-processor
/// last-beat timestamps (nanoseconds since run start) and step counters.
struct Heartbeats {
    start: Instant,
    beat_ns: Vec<AtomicU64>,
    steps: Vec<AtomicUsize>,
}

impl Heartbeats {
    fn new(n: usize, start: Instant) -> Self {
        Heartbeats {
            start,
            beat_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            steps: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn beat(&self, p: usize, steps: usize) {
        self.beat_ns[p].store(elapsed_ns(self.start), Ordering::Relaxed);
        self.steps[p].store(steps, Ordering::Relaxed);
    }

    fn age(&self, p: usize) -> Duration {
        let now = elapsed_ns(self.start);
        Duration::from_nanos(now.saturating_sub(self.beat_ns[p].load(Ordering::Relaxed)))
    }
}

/// How the in-thread worker loop ended.
enum WorkerExit<O, Pr> {
    /// Return normally (thread exits).
    Done {
        outcome: ProcOutcome,
        outputs: Vec<O>,
        steps: usize,
        probe: Pr,
    },
    /// Report, then park the thread forever (poised crash).
    Park {
        outcome: ProcOutcome,
        outputs: Vec<O>,
        steps: usize,
        probe: Pr,
    },
}

struct WorkerReport<O, Pr> {
    proc_id: usize,
    outcome: ProcOutcome,
    outputs: Vec<O>,
    steps: usize,
    /// `None` when the worker panicked (the probe unwound with it).
    probe: Option<Pr>,
}

/// Per-thread fault interpreter.
struct FaultDriver {
    /// `(fault, fired)` — `fired` marks consumed one-shots.
    faults: Vec<(Fault, bool)>,
}

/// What the driver tells the worker loop to do before an operation.
enum Injection {
    CrashStop,
    CrashPoised,
    Panic,
}

impl FaultDriver {
    fn new(faults: &[Fault]) -> Self {
        FaultDriver {
            faults: faults.iter().map(|f| (f.clone(), false)).collect(),
        }
    }

    /// Consults the plan before the worker performs its next shared-memory
    /// operation, having completed `ops_done` so far. Stalls are slept (and
    /// reported to `probe`) right here; terminal injections are returned for
    /// the worker loop to act on.
    fn before_op<Pr: Probe>(
        &mut self,
        proc_id: usize,
        ops_done: usize,
        is_write: bool,
        probe: &mut Pr,
    ) -> Option<Injection> {
        if self.faults.is_empty() {
            return None;
        }
        let mut injection = None;
        for (fault, fired) in &mut self.faults {
            match *fault {
                Fault::StallOnce { at_op, stall_ns } => {
                    if !*fired && ops_done >= at_op {
                        *fired = true;
                        if Pr::ENABLED {
                            probe.on_chaos(&ChaosEvent {
                                proc_id,
                                kind: ChaosKind::Stall,
                                at_op: ops_done as u64,
                                covered_global: None,
                                stall_ns,
                            });
                        }
                        std::thread::sleep(Duration::from_nanos(stall_ns));
                    }
                }
                Fault::StallEvery { period, stall_ns } => {
                    if ops_done > 0 && ops_done % period == 0 && !*fired {
                        // `fired` re-arms on off-period ops so each multiple
                        // stalls exactly once.
                        *fired = true;
                        if Pr::ENABLED {
                            probe.on_chaos(&ChaosEvent {
                                proc_id,
                                kind: ChaosKind::Stall,
                                at_op: ops_done as u64,
                                covered_global: None,
                                stall_ns,
                            });
                        }
                        std::thread::sleep(Duration::from_nanos(stall_ns));
                    } else if ops_done % period != 0 {
                        *fired = false;
                    }
                }
                Fault::CrashStop { after_ops } => {
                    if ops_done >= after_ops {
                        injection = Some(Injection::CrashStop);
                    }
                }
                Fault::CrashPoised { after_ops } => {
                    if ops_done >= after_ops && is_write && injection.is_none() {
                        injection = Some(Injection::CrashPoised);
                    }
                }
                Fault::PanicAt { at_op } => {
                    if ops_done >= at_op && !*fired {
                        *fired = true;
                        injection = Some(Injection::Panic);
                    }
                }
            }
        }
        injection
    }
}

/// [`run_chaos_probed`] without observation.
///
/// # Errors
///
/// Same configuration errors as
/// [`run_threaded`](crate::threaded::run_threaded).
///
/// # Panics
///
/// Panics if the plan's processor count differs from `procs.len()`.
/// Worker panics — injected or organic — never propagate; they become
/// [`ProcOutcome::Panicked`].
pub fn run_chaos<P>(
    procs: Vec<P>,
    wirings: Vec<Wiring>,
    m: usize,
    init: P::Value,
    plan: &FaultPlan,
    config: &ChaosConfig,
) -> Result<ThreadedReport<P::Value, P::Output>, MemoryError>
where
    P: Process + Send + 'static,
    P::Value: Clone + Send + Sync + std::fmt::Debug + 'static,
    P::Output: Send + std::fmt::Debug + 'static,
{
    run_chaos_probed(procs, wirings, m, init, plan, config, |_| NoProbe)
        .map(|(report, _probes)| report)
}

/// Runs `procs` on OS threads under fault plan `plan`, supervised per
/// `config`. Per-thread probes are built by `make_probe(i)` and returned in
/// processor order; a probe is `None` when its worker panicked (the probe
/// unwound with the thread) or missed the deadline.
///
/// The chaos-aware loop extends
/// [`run_threaded_probed`](crate::threaded::run_threaded_probed): workers
/// heartbeat on every step, consult the fault plan before every
/// shared-memory operation, and report a structured [`ProcOutcome`] through
/// a channel instead of being joined — so a parked (poised-crashed) or
/// wedged thread can never hang the caller. Step panics are contained with
/// [`catch_unwind`].
///
/// # Errors
///
/// Same configuration errors as
/// [`run_threaded`](crate::threaded::run_threaded).
///
/// # Panics
///
/// Panics if the plan's processor count differs from `procs.len()`.
#[allow(clippy::type_complexity)]
pub fn run_chaos_probed<P, Pr, F>(
    procs: Vec<P>,
    wirings: Vec<Wiring>,
    m: usize,
    init: P::Value,
    plan: &FaultPlan,
    config: &ChaosConfig,
    make_probe: F,
) -> Result<(ThreadedReport<P::Value, P::Output>, Vec<Option<Pr>>), MemoryError>
where
    P: Process + Send + 'static,
    P::Value: Clone + Send + Sync + std::fmt::Debug + 'static,
    P::Output: Send + std::fmt::Debug + 'static,
    Pr: Probe + Send + 'static,
    F: FnMut(usize) -> Pr,
{
    let mut make_probe = make_probe;
    let n = procs.len();
    if n < 2 {
        return Err(MemoryError::TooFewProcessors { processes: n });
    }
    if m == 0 {
        return Err(MemoryError::ZeroRegisters);
    }
    if wirings.len() != n {
        return Err(MemoryError::WiringCountMismatch {
            processes: n,
            wirings: wirings.len(),
        });
    }
    for (i, w) in wirings.iter().enumerate() {
        if w.len() != m {
            return Err(MemoryError::WiringSizeMismatch {
                proc: ProcId(i),
                wiring_len: w.len(),
                registers: m,
            });
        }
    }
    assert_eq!(
        plan.num_procs(),
        n,
        "fault plan covers {} processors but the run has {n}",
        plan.num_procs()
    );

    // All registers share the initial cell until first written: the value is
    // immutable behind the `Arc`, so sharing is invisible.
    let init_cell = Arc::new(init);
    let registers: Arc<Vec<Mutex<RegisterCell<P::Value>>>> = Arc::new(
        (0..m)
            .map(|_| {
                Mutex::new(RegisterCell {
                    value: Arc::clone(&init_cell),
                    version: 0,
                })
            })
            .collect(),
    );
    let start = Instant::now();
    let heartbeats = Arc::new(Heartbeats::new(n, start));
    let (tx, rx) = mpsc::channel::<WorkerReport<P::Output, Pr>>();
    let max_steps = config.max_steps;

    for (proc_id, (proc, wiring)) in procs.into_iter().zip(wirings).enumerate() {
        let registers = Arc::clone(&registers);
        let heartbeats = Arc::clone(&heartbeats);
        let probe = make_probe(proc_id);
        let driver = FaultDriver::new(plan.for_proc(proc_id));
        let tx = tx.clone();
        // Handles are dropped deliberately: workers report through the
        // channel, and a poised-crashed worker parks forever — joining
        // would hang.
        std::thread::spawn(move || {
            let body = catch_unwind(AssertUnwindSafe(|| {
                worker_loop(
                    proc_id,
                    proc,
                    wiring,
                    &registers,
                    probe,
                    driver,
                    &heartbeats,
                    max_steps,
                )
            }));
            let report = match body {
                Ok(WorkerExit::Done {
                    outcome,
                    outputs,
                    steps,
                    probe,
                })
                | Ok(WorkerExit::Park {
                    outcome,
                    outputs,
                    steps,
                    probe,
                }) => WorkerReport {
                    proc_id,
                    outcome,
                    outputs,
                    steps,
                    probe: Some(probe),
                },
                Err(payload) => WorkerReport {
                    proc_id,
                    outcome: ProcOutcome::Panicked {
                        message: panic_message(payload.as_ref()),
                    },
                    outputs: Vec::new(),
                    steps: heartbeats.steps[proc_id].load(Ordering::Relaxed),
                    probe: None,
                },
            };
            let park = matches!(
                report.outcome,
                ProcOutcome::Crashed {
                    covering: Some(_),
                    ..
                }
            );
            // A closed channel means the supervisor gave up on us
            // (deadline); nothing left to report to.
            let _ = tx.send(report);
            drop(tx);
            if park {
                loop {
                    std::thread::park();
                }
            }
        });
    }
    drop(tx);

    let telemetry = config
        .telemetry
        .as_deref()
        .map(ChaosTelemetry::from_registry);

    // Supervision: collect reports until all workers answered or the
    // deadline expires; classify the silent ones by heartbeat age.
    let supervise_guard = telemetry.as_ref().map(|t| t.supervise.enter());
    let mut slots: Vec<Option<WorkerReport<P::Output, Pr>>> = (0..n).map(|_| None).collect();
    let mut received = 0usize;
    while received < n {
        let timeout = match config.deadline {
            None => Duration::from_millis(50),
            Some(d) => match d.checked_sub(start.elapsed()) {
                Some(remaining) => remaining.min(Duration::from_millis(50)),
                None => break,
            },
        };
        match rx.recv_timeout(timeout) {
            Ok(report) => {
                let id = report.proc_id;
                debug_assert!(slots[id].is_none(), "duplicate report from worker {id}");
                slots[id] = Some(report);
                received += 1;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // A report that landed in the channel by the time the deadline expired
    // is a real answer — completion *at* the deadline is completion, and a
    // deadline that pre-expired during thread spawning must not erase
    // reports already sent. Drain whatever is queued before classifying the
    // silent workers by heartbeat.
    drain_ready(&rx, &mut slots, &mut received);
    drop(supervise_guard);

    let collect_guard = telemetry.as_ref().map(|t| t.collect.enter());
    let mut outputs = Vec::with_capacity(n);
    let mut steps = Vec::with_capacity(n);
    let mut outcomes = Vec::with_capacity(n);
    let mut probes = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(report) => {
                outputs.push(report.outputs);
                steps.push(report.steps);
                outcomes.push(report.outcome);
                probes.push(report.probe);
            }
            None => {
                outputs.push(Vec::new());
                steps.push(heartbeats.steps[i].load(Ordering::Relaxed));
                outcomes.push(if heartbeats.age(i) > config.stall_grace {
                    ProcOutcome::Stalled
                } else {
                    ProcOutcome::DeadlineExceeded
                });
                probes.push(None);
            }
        }
    }

    let final_contents = registers
        .iter()
        .map(|r| {
            let cell = r.lock();
            (*cell.value).clone()
        })
        .collect();
    drop(collect_guard);
    if let Some(tel) = &telemetry {
        tel.scenarios_done.inc();
        tel.steps_total.add(steps.iter().map(|&s| s as u64).sum());
    }
    Ok((
        ThreadedReport {
            outputs,
            steps,
            outcomes,
            final_contents,
        },
        probes,
    ))
}

/// Non-blocking post-deadline drain: moves every report already queued in
/// `rx` into its slot. Reports sent after this point stay unclaimed — their
/// workers are classified by heartbeat age like any other silent worker.
fn drain_ready<O, Pr>(
    rx: &mpsc::Receiver<WorkerReport<O, Pr>>,
    slots: &mut [Option<WorkerReport<O, Pr>>],
    received: &mut usize,
) {
    while *received < slots.len() {
        match rx.try_recv() {
            Ok(report) => {
                let id = report.proc_id;
                debug_assert!(slots[id].is_none(), "duplicate report from worker {id}");
                slots[id] = Some(report);
                *received += 1;
            }
            Err(mpsc::TryRecvError::Empty | mpsc::TryRecvError::Disconnected) => break,
        }
    }
}

/// The per-thread step loop: identical memory semantics to
/// [`run_threaded_probed`](crate::threaded::run_threaded_probed), plus
/// heartbeats and the fault gate before every shared-memory operation.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P, Pr>(
    proc_id: usize,
    mut proc: P,
    wiring: Wiring,
    registers: &[Mutex<RegisterCell<P::Value>>],
    mut probe: Pr,
    mut driver: FaultDriver,
    heartbeats: &Heartbeats,
    max_steps: usize,
) -> WorkerExit<P::Output, Pr>
where
    P: Process,
    P::Value: Clone + std::fmt::Debug,
    P::Output: std::fmt::Debug,
    Pr: Probe,
{
    let mut outputs = Vec::new();
    let mut steps = 0usize;
    let mut ops = 0usize;
    let mut input = StepInput::Start;
    let mut halted = false;
    while steps < max_steps {
        let action = proc.step(input);
        steps += 1;
        heartbeats.beat(proc_id, steps);
        let time = steps as u64;
        // The fault gate sits between deciding an operation and performing
        // it — the instant the model calls "poised".
        if let Action::Read { .. } | Action::Write { .. } = action {
            let is_write = matches!(action, Action::Write { .. });
            match driver.before_op(proc_id, ops, is_write, &mut probe) {
                Some(Injection::CrashStop) => {
                    if Pr::ENABLED {
                        probe.on_chaos(&ChaosEvent {
                            proc_id,
                            kind: ChaosKind::CrashStop,
                            at_op: ops as u64,
                            covered_global: None,
                            stall_ns: 0,
                        });
                    }
                    return WorkerExit::Done {
                        outcome: ProcOutcome::Crashed {
                            after_ops: ops,
                            covering: None,
                        },
                        outputs,
                        steps,
                        probe,
                    };
                }
                Some(Injection::CrashPoised) => {
                    let global = match action {
                        Action::Write { local, .. } => wiring.global(local).0,
                        _ => unreachable!("poised crashes only fire on writes"),
                    };
                    if Pr::ENABLED {
                        probe.on_chaos(&ChaosEvent {
                            proc_id,
                            kind: ChaosKind::CrashPoised,
                            at_op: ops as u64,
                            covered_global: Some(global),
                            stall_ns: 0,
                        });
                    }
                    return WorkerExit::Park {
                        outcome: ProcOutcome::Crashed {
                            after_ops: ops,
                            covering: Some(global),
                        },
                        outputs,
                        steps,
                        probe,
                    };
                }
                Some(Injection::Panic) => {
                    if Pr::ENABLED {
                        probe.on_chaos(&ChaosEvent {
                            proc_id,
                            kind: ChaosKind::Panic,
                            at_op: ops as u64,
                            covered_global: None,
                            stall_ns: 0,
                        });
                    }
                    panic!("chaos: injected panic on processor {proc_id} at op {ops}");
                }
                None => {}
            }
        }
        input = match action {
            Action::Read { local } => {
                let global = wiring.global(local);
                // Clone the Arc handle under the lock, never the value: the
                // critical section is O(1) regardless of value size.
                let value;
                if Pr::ENABLED {
                    let op_start = Instant::now();
                    let guard = registers[global.0].lock();
                    let lock_wait_ns = elapsed_ns(op_start);
                    value = Versioned::from_shared(Arc::clone(&guard.value), guard.version);
                    drop(guard);
                    probe.on_read(&ReadEvent {
                        proc_id,
                        local: local.0,
                        global: global.0,
                        time,
                        read_from: None,
                        value: Pr::WANTS_VALUES.then(|| format!("{:?}", value.get())),
                    });
                    probe.on_timing(&TimingEvent {
                        proc_id,
                        op: OpKind::Read,
                        ns: elapsed_ns(op_start),
                        lock_wait_ns,
                    });
                } else {
                    let guard = registers[global.0].lock();
                    value = Versioned::from_shared(Arc::clone(&guard.value), guard.version);
                }
                ops += 1;
                StepInput::ReadValue(value)
            }
            Action::Write { local, value } => {
                let global = wiring.global(local);
                // Allocate the shared cell before taking the lock; the
                // critical section is a pointer swap plus a version bump.
                let cell = Arc::new(value);
                if Pr::ENABLED {
                    let rendered = Pr::WANTS_VALUES.then(|| format!("{:?}", &*cell));
                    let op_start = Instant::now();
                    let mut guard = registers[global.0].lock();
                    let lock_wait_ns = elapsed_ns(op_start);
                    guard.value = cell;
                    guard.version += 1;
                    drop(guard);
                    probe.on_write(&WriteEvent {
                        proc_id,
                        local: local.0,
                        global: global.0,
                        time,
                        overwrote_writer: None,
                        value: rendered,
                    });
                    probe.on_timing(&TimingEvent {
                        proc_id,
                        op: OpKind::Write,
                        ns: elapsed_ns(op_start),
                        lock_wait_ns,
                    });
                } else {
                    let mut guard = registers[global.0].lock();
                    guard.value = cell;
                    guard.version += 1;
                }
                ops += 1;
                StepInput::Wrote
            }
            Action::Output(o) => {
                if Pr::ENABLED {
                    probe.on_output(&OutputEvent {
                        proc_id,
                        time,
                        value: Pr::WANTS_VALUES.then(|| format!("{o:?}")),
                    });
                }
                outputs.push(o);
                StepInput::OutputRecorded
            }
            Action::Halt => {
                if Pr::ENABLED {
                    probe.on_halt(proc_id, time);
                }
                halted = true;
                break;
            }
        };
    }
    WorkerExit::Done {
        outcome: if halted {
            ProcOutcome::Completed
        } else {
            ProcOutcome::BudgetExhausted
        },
        outputs,
        steps,
        probe,
    }
}

/// Renders a caught panic payload (`&str` and `String` payloads verbatim,
/// anything else a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_obs::RunMetrics;

    /// Writes `rounds` times to alternating registers, then halts.
    #[derive(Clone)]
    struct WriterN {
        input: u32,
        rounds: u32,
        done: u32,
    }
    impl Process for WriterN {
        type Value = u32;
        type Output = u32;
        fn step(&mut self, _i: StepInput<u32>) -> Action<u32, u32> {
            if self.done == self.rounds {
                self.done += 1;
                return Action::Output(self.input);
            }
            if self.done > self.rounds {
                return Action::Halt;
            }
            self.done += 1;
            Action::write(0, self.input)
        }
    }

    fn writers(n: usize, rounds: u32) -> Vec<WriterN> {
        (0..n)
            .map(|i| WriterN {
                input: i as u32,
                rounds,
                done: 0,
            })
            .collect()
    }

    #[test]
    fn empty_plan_matches_plain_threaded_semantics() {
        let report = run_chaos(
            writers(3, 2),
            vec![Wiring::identity(1); 3],
            1,
            0u32,
            &FaultPlan::new(3),
            &ChaosConfig::new(100),
        )
        .unwrap();
        assert!(report.all_completed());
        assert!(report.outcomes.iter().all(ProcOutcome::is_completed));
        assert_eq!(report.outputs.iter().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn telemetry_attached_run_reports_identically_and_counts_exactly() {
        let run = |telemetry: Option<Arc<MetricRegistry>>| {
            let mut config = ChaosConfig::new(100);
            config.telemetry = telemetry;
            run_chaos(
                writers(3, 2),
                vec![Wiring::identity(1); 3],
                1,
                0u32,
                &FaultPlan::new(3),
                &config,
            )
            .unwrap()
        };
        let plain = run(None);
        let registry = Arc::new(MetricRegistry::new());
        let probed = run(Some(Arc::clone(&registry)));
        assert_eq!(plain.outcomes, probed.outcomes);
        assert_eq!(plain.outputs, probed.outputs);
        assert_eq!(plain.steps, probed.steps);

        let snap = registry.sample(0, None);
        assert_eq!(snap.counter("chaos.scenarios_done"), 1);
        assert_eq!(
            snap.counter("chaos.steps_total"),
            probed.steps.iter().map(|&s| s as u64).sum::<u64>()
        );
        let supervise = snap.phases.get("chaos.supervise").expect("supervise span");
        assert_eq!(supervise.calls, 1);
        let collect = snap.phases.get("chaos.collect").expect("collect span");
        assert_eq!(collect.calls, 1);

        // A second supervised run accumulates into the same registry.
        let _ = run(Some(Arc::clone(&registry)));
        assert_eq!(registry.counter("chaos.scenarios_done").get(), 2);
    }

    #[test]
    fn crash_stop_fires_after_k_ops() {
        let report = run_chaos(
            writers(3, 5),
            vec![Wiring::identity(1); 3],
            1,
            0u32,
            &FaultPlan::new(3).crash_stop(1, 2),
            &ChaosConfig::new(100),
        )
        .unwrap();
        assert_eq!(
            report.outcomes[1],
            ProcOutcome::Crashed {
                after_ops: 2,
                covering: None
            }
        );
        assert!(report.outputs[1].is_empty(), "crashed before its output");
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[2].is_completed());
    }

    #[test]
    fn poised_crash_parks_without_hanging_the_run() {
        let report = run_chaos(
            writers(2, 3),
            vec![Wiring::identity(1); 2],
            1,
            7u32,
            &FaultPlan::new(2).crash_poised(0, 1),
            &ChaosConfig::new(100),
        )
        .unwrap();
        assert_eq!(
            report.outcomes[0],
            ProcOutcome::Crashed {
                after_ops: 1,
                covering: Some(0)
            }
        );
        assert_eq!(report.covered_registers(), vec![0]);
        assert!(report.outcomes[1].is_completed());
        // The pending write never landed: p1's write is the final value.
        assert_eq!(report.final_contents, vec![1]);
    }

    #[test]
    fn injected_panic_is_contained_and_recorded() {
        let report = run_chaos(
            writers(3, 4),
            vec![Wiring::identity(1); 3],
            1,
            0u32,
            &FaultPlan::new(3).panic_at(2, 1),
            &ChaosConfig::new(100),
        )
        .unwrap();
        match &report.outcomes[2] {
            ProcOutcome::Panicked { message } => {
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(report.outcomes[0].is_completed());
        assert!(report.outcomes[1].is_completed());
    }

    #[test]
    fn stalls_delay_but_do_not_kill() {
        let report = run_chaos(
            writers(2, 4),
            vec![Wiring::identity(1); 2],
            1,
            0u32,
            &FaultPlan::new(2)
                .stall_once(0, 1, Duration::from_millis(2))
                .stall_every(1, 2, Duration::from_millis(1)),
            &ChaosConfig::new(100).with_deadline(Duration::from_secs(30)),
        )
        .unwrap();
        assert!(report.all_completed(), "{:?}", report.outcomes);
    }

    #[test]
    fn deadline_classifies_silent_workers() {
        let report = run_chaos(
            writers(2, 1),
            vec![Wiring::identity(1); 2],
            1,
            0u32,
            // A 10-second stall on p0's first op: p0 cannot report before
            // the 100 ms deadline and its heartbeat stays fresh-ish — the
            // supervisor classifies by heartbeat age vs the tiny grace.
            &FaultPlan::new(2).stall_once(0, 0, Duration::from_secs(10)),
            &ChaosConfig::new(100)
                .with_deadline(Duration::from_millis(100))
                .with_stall_grace(Duration::from_millis(20)),
        )
        .unwrap();
        assert!(
            matches!(
                report.outcomes[0],
                ProcOutcome::Stalled | ProcOutcome::DeadlineExceeded
            ),
            "{:?}",
            report.outcomes[0]
        );
        assert!(report.outcomes[1].is_completed());
    }

    #[test]
    fn reports_queued_at_the_deadline_are_drained_not_discarded() {
        // The exact post-deadline race, deterministically: both workers'
        // reports are already in the channel when the supervisor gives up
        // on blocking. Classification must come from the reports, never
        // from heartbeat age.
        let (tx, rx) = mpsc::channel::<WorkerReport<u32, NoProbe>>();
        for proc_id in [1usize, 0] {
            tx.send(WorkerReport {
                proc_id,
                outcome: ProcOutcome::Completed,
                outputs: vec![proc_id as u32],
                steps: 3,
                probe: Some(NoProbe),
            })
            .unwrap();
        }
        let mut slots: Vec<Option<WorkerReport<u32, NoProbe>>> = vec![None, None];
        let mut received = 0;
        drain_ready(&rx, &mut slots, &mut received);
        assert_eq!(received, 2);
        for (i, slot) in slots.iter().enumerate() {
            let report = slot.as_ref().expect("queued report claimed");
            assert_eq!(report.outcome, ProcOutcome::Completed);
            assert_eq!(report.outputs, vec![i as u32]);
        }
        // An empty channel leaves the remaining slot silent without
        // blocking or panicking.
        let mut slots: Vec<Option<WorkerReport<u32, NoProbe>>> = vec![None];
        let mut received = 0;
        drain_ready(&rx, &mut slots, &mut received);
        assert_eq!(received, 0);
        assert!(slots[0].is_none());
    }

    #[test]
    fn zero_fault_runs_under_a_deadline_always_complete() {
        // Regression: a fault-free run raced against a deadline must never
        // lose a completion that reported in time. Loop to give the
        // spawn/report/supervise interleavings room to vary.
        for _ in 0..40 {
            let report = run_chaos(
                writers(2, 1),
                vec![Wiring::identity(1); 2],
                1,
                0u32,
                &FaultPlan::new(2),
                &ChaosConfig::new(100).with_deadline(Duration::from_millis(250)),
            )
            .unwrap();
            assert!(
                report.outcomes.iter().all(ProcOutcome::is_completed),
                "{:?}",
                report.outcomes
            );
            assert_eq!(report.outputs.iter().map(Vec::len).sum::<usize>(), 2);
        }
    }

    #[test]
    fn chaos_events_flow_through_probes() {
        #[derive(Default)]
        struct ChaosCount(Vec<ChaosEvent>);
        impl Probe for ChaosCount {
            fn on_chaos(&mut self, event: &ChaosEvent) {
                self.0.push(event.clone());
            }
        }
        let (report, probes) = run_chaos_probed(
            writers(2, 4),
            vec![Wiring::identity(1); 2],
            1,
            0u32,
            &FaultPlan::new(2).crash_stop(0, 2),
            &ChaosConfig::new(100),
            |_| ChaosCount::default(),
        )
        .unwrap();
        assert!(matches!(
            report.outcomes[0],
            ProcOutcome::Crashed { covering: None, .. }
        ));
        let p0 = probes[0].as_ref().expect("reported worker keeps probe");
        assert_eq!(p0.0.len(), 1);
        assert_eq!(p0.0[0].kind, ChaosKind::CrashStop);
        assert_eq!(p0.0[0].at_op, 2);
    }

    #[test]
    fn metrics_probes_survive_chaos() {
        let (report, probes) = run_chaos_probed(
            writers(3, 3),
            vec![Wiring::identity(1); 3],
            1,
            0u32,
            &FaultPlan::new(3).crash_stop(1, 1),
            &ChaosConfig::new(100),
            |_| RunMetrics::new(),
        )
        .unwrap();
        let mut total = RunMetrics::new();
        for p in probes.iter().flatten() {
            total.merge(p);
        }
        // p0 and p2 completed their 3 writes; p1 crashed after 1.
        assert_eq!(total.total_writes(), 7);
        assert_eq!(report.steps[1], 2, "crash counted at the blocked op");
    }

    #[test]
    #[should_panic(expected = "fault plan covers")]
    fn plan_size_mismatch_panics() {
        let _ = run_chaos(
            writers(3, 1),
            vec![Wiring::identity(1); 3],
            1,
            0u32,
            &FaultPlan::new(2),
            &ChaosConfig::new(10),
        );
    }
}

//! Execution traces: a faithful record of every step of an execution.
//!
//! Traces serve three purposes: reconstructing the paper's Figure 2 table,
//! computing the *reads-from* relation used by the stable-view analysis
//! (Section 4), and checking path properties such as "the returned snapshot
//! never equalled the memory contents" (the non-atomicity witness of
//! Section 8).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{LocalRegId, ProcId, RegId};

/// What happened in a single step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind<V, O> {
    /// An atomic register read.
    Read {
        /// Local register name used by the reader.
        local: LocalRegId,
        /// Ground-truth register accessed.
        global: RegId,
        /// Value read.
        value: V,
        /// The register's last writer at the time of the read — the processor
        /// the reader *reads from* (paper, Section 2). `None` if the register
        /// still held its initial value.
        read_from: Option<ProcId>,
    },
    /// An atomic register write.
    Write {
        /// Local register name used by the writer.
        local: LocalRegId,
        /// Ground-truth register accessed.
        global: RegId,
        /// Value written.
        value: V,
        /// Value that was overwritten.
        overwrote: V,
        /// The previous writer whose value was overwritten, if any.
        overwrote_writer: Option<ProcId>,
    },
    /// The processor recorded an output.
    Output(O),
    /// The processor halted.
    Halt,
}

/// One step of an execution: who did what, at which global time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event<V, O> {
    /// Global time of the step (0-based position in the execution).
    pub time: u64,
    /// The processor that took the step.
    pub proc: ProcId,
    /// What the step did.
    pub kind: EventKind<V, O>,
}

impl<V: fmt::Debug, O: fmt::Debug> fmt::Display for Event<V, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:<4} {}: ", self.time, self.proc)?;
        match &self.kind {
            EventKind::Read {
                local,
                global,
                value,
                read_from,
            } => {
                write!(f, "read  {local}→{global} = {value:?}")?;
                match read_from {
                    Some(q) => write!(f, " (from {q})"),
                    None => write!(f, " (initial)"),
                }
            }
            EventKind::Write {
                local,
                global,
                value,
                ..
            } => {
                write!(f, "write {local}→{global} := {value:?}")
            }
            EventKind::Output(o) => write!(f, "output {o:?}"),
            EventKind::Halt => write!(f, "halt"),
        }
    }
}

/// A sequence of [`Event`]s, with query helpers for analyses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace<V, O> {
    events: Vec<Event<V, O>>,
}

impl<V, O> Default for Trace<V, O> {
    fn default() -> Self {
        Trace { events: Vec::new() }
    }
}

impl<V, O> Trace<V, O> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event<V, O>) {
        self.events.push(event);
    }

    /// All events in order.
    #[must_use]
    pub fn events(&self) -> &[Event<V, O>] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events of one processor.
    pub fn of_proc(&self, p: ProcId) -> impl Iterator<Item = &Event<V, O>> {
        self.events.iter().filter(move |e| e.proc == p)
    }

    /// The *reads-from* pairs `(reader, writer, time)`: every read step in
    /// which `reader` read a register last written by `writer`.
    ///
    /// This is the relation underlying Lemma 4.4: if a processor with stable
    /// view `V2` reads from a processor with view `V1`, then `V1 ⊆ V2`.
    pub fn reads_from(&self) -> impl Iterator<Item = (ProcId, ProcId, u64)> + '_ {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Read {
                read_from: Some(w), ..
            } => Some((e.proc, *w, e.time)),
            _ => None,
        })
    }

    /// Steps taken by each processor, indexed by processor id (length `n`).
    #[must_use]
    pub fn step_counts(&self, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for e in &self.events {
            if e.proc.0 < n {
                counts[e.proc.0] += 1;
            }
        }
        counts
    }

    /// The outputs recorded in the trace, in order, as `(proc, output)`.
    pub fn outputs(&self) -> impl Iterator<Item = (ProcId, &O)> {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Output(o) => Some((e.proc, o)),
            _ => None,
        })
    }

    /// Clears all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Counts *lost writes*: writes that were overwritten before any
    /// processor read the register. A lost write transferred no information
    /// — the quantitative face of the paper's covering phenomenon ("it is
    /// hard to avoid processors overwriting each other's writes").
    ///
    /// Returns `(lost, total_writes)`.
    #[must_use]
    pub fn lost_writes(&self, m: usize) -> (usize, usize) {
        // For each register, walk its event subsequence: a write followed
        // (in register-local order) by another write with no intervening
        // read is lost. The final write of a register is *not* counted as
        // lost (nothing overwrote it).
        let mut last_write_unread: Vec<bool> = vec![false; m];
        let mut lost = 0usize;
        let mut total = 0usize;
        for e in &self.events {
            match &e.kind {
                EventKind::Write { global, .. } => {
                    total += 1;
                    if last_write_unread[global.index()] {
                        lost += 1;
                    }
                    last_write_unread[global.index()] = true;
                }
                EventKind::Read { global, .. } => {
                    last_write_unread[global.index()] = false;
                }
                _ => {}
            }
        }
        (lost, total)
    }
}

impl<V, O> FromIterator<Event<V, O>> for Trace<V, O> {
    fn from_iter<T: IntoIterator<Item = Event<V, O>>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl<V, O> Extend<Event<V, O>> for Trace<V, O> {
    fn extend<T: IntoIterator<Item = Event<V, O>>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl<'a, V, O> IntoIterator for &'a Trace<V, O> {
    type Item = &'a Event<V, O>;
    type IntoIter = std::slice::Iter<'a, Event<V, O>>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_ev(time: u64, p: usize, from: Option<usize>) -> Event<u32, u32> {
        Event {
            time,
            proc: ProcId(p),
            kind: EventKind::Read {
                local: LocalRegId(0),
                global: RegId(0),
                value: 1,
                read_from: from.map(ProcId),
            },
        }
    }

    #[test]
    fn reads_from_extracts_pairs() {
        let trace: Trace<u32, u32> = vec![
            read_ev(0, 1, None),
            read_ev(1, 1, Some(2)),
            Event {
                time: 2,
                proc: ProcId(2),
                kind: EventKind::Output(7),
            },
            read_ev(3, 0, Some(1)),
        ]
        .into_iter()
        .collect();
        let pairs: Vec<_> = trace.reads_from().collect();
        assert_eq!(
            pairs,
            vec![(ProcId(1), ProcId(2), 1), (ProcId(0), ProcId(1), 3)]
        );
    }

    #[test]
    fn step_counts_per_proc() {
        let trace: Trace<u32, u32> = vec![
            read_ev(0, 0, None),
            read_ev(1, 0, None),
            read_ev(2, 2, None),
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.step_counts(3), vec![2, 0, 1]);
    }

    #[test]
    fn outputs_extracted_in_order() {
        let trace: Trace<u32, u32> = vec![
            Event {
                time: 0,
                proc: ProcId(1),
                kind: EventKind::Output(5),
            },
            Event {
                time: 1,
                proc: ProcId(0),
                kind: EventKind::Output(3),
            },
        ]
        .into_iter()
        .collect();
        let outs: Vec<_> = trace.outputs().map(|(p, o)| (p, *o)).collect();
        assert_eq!(outs, vec![(ProcId(1), 5), (ProcId(0), 3)]);
    }

    #[test]
    fn display_is_informative() {
        let e = read_ev(3, 1, Some(0));
        let s = e.to_string();
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains("read"), "{s}");
        assert!(s.contains("from p0"), "{s}");

        let h: Event<u32, u32> = Event {
            time: 0,
            proc: ProcId(0),
            kind: EventKind::Halt,
        };
        assert!(h.to_string().contains("halt"));
    }

    #[test]
    fn of_proc_filters() {
        let trace: Trace<u32, u32> = vec![
            read_ev(0, 0, None),
            read_ev(1, 1, None),
            read_ev(2, 0, None),
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.of_proc(ProcId(0)).count(), 2);
        assert_eq!(trace.of_proc(ProcId(1)).count(), 1);
        assert_eq!(trace.of_proc(ProcId(5)).count(), 0);
    }

    #[test]
    fn lost_writes_counts_unread_overwrites() {
        let w = |time: u64, p: usize, reg: usize| Event::<u32, u32> {
            time,
            proc: ProcId(p),
            kind: EventKind::Write {
                local: LocalRegId(0),
                global: RegId(reg),
                value: 1,
                overwrote: 0,
                overwrote_writer: None,
            },
        };
        let r = |time: u64, p: usize, reg: usize| Event::<u32, u32> {
            time,
            proc: ProcId(p),
            kind: EventKind::Read {
                local: LocalRegId(0),
                global: RegId(reg),
                value: 1,
                read_from: None,
            },
        };
        // r0: write, write (lost), read, write (not lost: read before? the
        // read cleared it), write (lost).
        let trace: Trace<u32, u32> = vec![
            w(0, 0, 0),
            w(1, 1, 0), // overwrites an unread write: 1 lost
            r(2, 0, 0),
            w(3, 0, 0),
            w(4, 1, 0), // overwrites an unread write: 2 lost
            w(5, 0, 1), // other register, final: not lost
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.lost_writes(2), (2, 5));
    }

    #[test]
    fn lost_writes_empty_trace() {
        let trace: Trace<u32, u32> = Trace::new();
        assert_eq!(trace.lost_writes(3), (0, 0));
    }

    #[test]
    fn clear_empties() {
        let mut trace: Trace<u32, u32> = vec![read_ev(0, 0, None)].into_iter().collect();
        assert!(!trace.is_empty());
        trace.clear();
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
    }
}

//! The step-machine process model.
//!
//! A processor in the paper is a deterministic sequential program whose
//! interaction with the world is a sequence of atomic single-register reads
//! and writes, followed (possibly) by writing a write-once output. We model a
//! processor as a Mealy machine: the executor delivers the result of the
//! previous shared-memory access as a [`StepInput`] and receives the next
//! access as an [`Action`]. Local computation happens inside
//! [`Process::step`], mirroring how PlusCal executes everything between two
//! labels atomically.
//!
//! Crucially for anonymity, a `Process` never sees a
//! [`ProcId`](crate::ProcId) or a [`RegId`](crate::RegId): all register
//! addressing is via [`LocalRegId`](crate::LocalRegId), which the executor
//! translates through the processor's private wiring. Processor anonymity is
//! then a *property of construction*: a system is processor-anonymous iff all
//! processes start from the same state modulo their inputs, which the
//! algorithms in `fa-core` guarantee by building every processor from the
//! same `new(input, n)` constructor.

use core::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::LocalRegId;

/// A version-tagged, `Arc`-shared register value, as delivered by a read.
///
/// The shared-memory substrates store register contents behind `Arc` cells;
/// a read hands the process a reference-counted handle to the cell's current
/// contents plus the register's write version — no deep clone on the read
/// path. `Versioned<V>` dereferences to `V`, so process code treats it as
/// the value it read.
///
/// The version counts writes to the register the value was read from (0 for
/// a never-written register). It is *observability metadata* — comparison
/// and hashing ignore it, and processes must never branch on it: the model
/// checker explores states outside any single timeline and always delivers
/// version 0, so a version-sensitive process would behave differently under
/// model checking than under execution.
pub struct Versioned<V> {
    value: Arc<V>,
    version: u64,
}

impl<V> Versioned<V> {
    /// Wraps a bare value, version 0 — a read from a never-written register,
    /// and the form the model checker and unit tests feed processes.
    #[must_use]
    pub fn new(value: V) -> Self {
        Versioned {
            value: Arc::new(value),
            version: 0,
        }
    }

    /// Wraps an already-shared cell with the register's write version.
    #[must_use]
    pub fn from_shared(value: Arc<V>, version: u64) -> Self {
        Versioned { value, version }
    }

    /// How many writes the source register had seen when this value was
    /// read.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The value, by reference (also available through `Deref`).
    #[must_use]
    pub fn get(&self) -> &V {
        &self.value
    }

    /// The shared cell itself.
    #[must_use]
    pub fn shared(&self) -> &Arc<V> {
        &self.value
    }

    /// Consumes the handle and returns the shared cell.
    #[must_use]
    pub fn into_shared(self) -> Arc<V> {
        self.value
    }
}

impl<V: Clone> Versioned<V> {
    /// Consumes the handle and returns the value, cloning only if the cell
    /// is still shared.
    #[must_use]
    pub fn into_value(self) -> V {
        Arc::try_unwrap(self.value).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl<V> Clone for Versioned<V> {
    fn clone(&self) -> Self {
        Versioned {
            value: Arc::clone(&self.value),
            version: self.version,
        }
    }
}

impl<V> Deref for Versioned<V> {
    type Target = V;

    fn deref(&self) -> &V {
        &self.value
    }
}

impl<V: fmt::Debug> fmt::Debug for Versioned<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Versioned")
            .field("value", &*self.value)
            .field("version", &self.version)
            .finish()
    }
}

// Comparison and hashing see only the value: the version is metadata about
// *when* the value was read, not part of what was read.
impl<V: PartialEq> PartialEq for Versioned<V> {
    fn eq(&self, other: &Self) -> bool {
        *self.value == *other.value
    }
}

impl<V: Eq> Eq for Versioned<V> {}

impl<V: std::hash::Hash> std::hash::Hash for Versioned<V> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

/// The next shared-memory access (or decision) a process wants to perform.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action<V, O> {
    /// Atomically read local register `local`; the value arrives in the next
    /// [`StepInput::ReadValue`].
    Read {
        /// The local register to read.
        local: LocalRegId,
    },
    /// Atomically write `value` to local register `local`.
    Write {
        /// The local register to write.
        local: LocalRegId,
        /// The value to write.
        value: V,
    },
    /// Produce an output. For one-shot tasks this is the write-once output of
    /// the model; long-lived objects may output repeatedly (each output is
    /// recorded by the executor). The process keeps running until it returns
    /// [`Action::Halt`].
    Output(O),
    /// Terminate; the scheduler will never run this process again.
    Halt,
}

impl<V, O> Action<V, O> {
    /// Convenience constructor for a read of local register `local`.
    #[must_use]
    pub fn read(local: usize) -> Self {
        Action::Read {
            local: LocalRegId(local),
        }
    }

    /// Convenience constructor for a write of `value` to local register
    /// `local`.
    #[must_use]
    pub fn write(local: usize, value: V) -> Self {
        Action::Write {
            local: LocalRegId(local),
            value,
        }
    }

    /// Whether this action is a shared-memory access (read or write), as
    /// opposed to an output or halt.
    #[must_use]
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Action::Read { .. } | Action::Write { .. })
    }

    /// Whether this action is [`Action::Halt`].
    #[must_use]
    pub fn is_halt(&self) -> bool {
        matches!(self, Action::Halt)
    }

    /// The local register this action touches, if it is a memory access.
    #[must_use]
    pub fn local_register(&self) -> Option<LocalRegId> {
        match self {
            Action::Read { local } | Action::Write { local, .. } => Some(*local),
            _ => None,
        }
    }
}

/// What the executor feeds a process at the start of a step: the result of
/// the process's previous action.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StepInput<V> {
    /// First activation; there is no previous action.
    Start,
    /// The previous action was a read and returned this value (shared with
    /// the register cell it came from; see [`Versioned`]).
    ReadValue(Versioned<V>),
    /// The previous action was a write; it completed.
    Wrote,
    /// The previous action was an output; it was recorded.
    OutputRecorded,
}

impl<V> StepInput<V> {
    /// Convenience constructor wrapping a bare value as a version-0 read —
    /// the form unit tests drive processes with.
    #[must_use]
    pub fn read_value(value: V) -> Self {
        StepInput::ReadValue(Versioned::new(value))
    }
}

/// A deterministic process (the paper's "program" run by every processor).
///
/// # Contract
///
/// * The first call to [`step`](Process::step) receives [`StepInput::Start`].
/// * If `step` returns [`Action::Read`], the next call receives
///   [`StepInput::ReadValue`] carrying the value read.
/// * If it returns [`Action::Write`], the next call receives
///   [`StepInput::Wrote`]; for [`Action::Output`],
///   [`StepInput::OutputRecorded`].
/// * After returning [`Action::Halt`], `step` is never called again.
/// * `step` must be deterministic: the same state and input always produce
///   the same action (required for model checking and for the paper's model,
///   where the only nondeterminism is the scheduler and the wiring).
///
/// Implementations used with the model checker should also derive `Clone`,
/// `PartialEq`, `Eq` and `Hash` so global states can be deduplicated.
pub trait Process {
    /// The type of values stored in registers.
    type Value;
    /// The type of outputs the process may produce.
    type Output;

    /// Consumes the result of the previous action and returns the next one.
    fn step(&mut self, input: StepInput<Self::Value>) -> Action<Self::Value, Self::Output>;
}

// Box<P> forwards the process implementation, allowing heterogeneous
// collections of processes behind one value type.
impl<P: Process + ?Sized> Process for Box<P> {
    type Value = P::Value;
    type Output = P::Output;

    fn step(&mut self, input: StepInput<Self::Value>) -> Action<Self::Value, Self::Output> {
        (**self).step(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_helpers() {
        let a: Action<u32, ()> = Action::read(3);
        assert!(a.is_memory_access());
        assert!(!a.is_halt());
        assert_eq!(a.local_register(), Some(LocalRegId(3)));

        let w: Action<u32, ()> = Action::write(1, 9);
        assert_eq!(w.local_register(), Some(LocalRegId(1)));
        assert!(w.is_memory_access());

        let h: Action<u32, ()> = Action::Halt;
        assert!(h.is_halt());
        assert_eq!(h.local_register(), None);
        assert!(!h.is_memory_access());

        let o: Action<u32, u32> = Action::Output(5);
        assert!(!o.is_memory_access());
        assert_eq!(o.local_register(), None);
    }

    #[derive(Clone)]
    struct Counter(u32);
    impl Process for Counter {
        type Value = u32;
        type Output = u32;
        fn step(&mut self, _input: StepInput<u32>) -> Action<u32, u32> {
            self.0 += 1;
            if self.0 > 2 {
                Action::Halt
            } else {
                Action::Output(self.0)
            }
        }
    }

    #[test]
    fn boxed_process_forwards() {
        let mut b: Box<Counter> = Box::new(Counter(0));
        assert_eq!(b.step(StepInput::Start), Action::Output(1));
        assert_eq!(b.step(StepInput::OutputRecorded), Action::Output(2));
        assert_eq!(b.step(StepInput::OutputRecorded), Action::Halt);
    }

    #[test]
    fn dyn_process_objects_work() {
        // The trait must stay object-safe: heterogeneous systems are built
        // from Box<dyn Process<...>>.
        let mut procs: Vec<Box<dyn Process<Value = u32, Output = u32>>> =
            vec![Box::new(Counter(0)), Box::new(Counter(1))];
        assert_eq!(procs[0].step(StepInput::Start), Action::Output(1));
        assert_eq!(procs[1].step(StepInput::Start), Action::Output(2));
    }
}

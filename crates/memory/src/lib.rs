//! # fa-memory: the fully-anonymous shared-memory substrate
//!
//! This crate implements the execution model of Losa & Gafni,
//! *"Understanding Read-Write Wait-Free Coverings in the Fully-Anonymous
//! Shared-Memory Model"* (PODC 2024), which itself follows Raynal & Taubenfeld.
//!
//! The model consists of `N > 1` asynchronous processors communicating through
//! `M > 0` multi-writer multi-reader (MWMR) atomic registers. Two kinds of
//! anonymity are in force:
//!
//! * **Processor anonymity** — every processor runs exactly the same program;
//!   a processor's identifier never appears in its code. In this crate that
//!   means algorithm implementations (the [`Process`] trait) never see a
//!   [`ProcId`]; ground-truth identifiers exist only inside the executor, the
//!   trace, and analysis code.
//! * **Memory anonymity** — each processor `p` addresses the registers through
//!   a private permutation `σ_p` fixed at initialization and unknown to every
//!   processor. An instruction by `p` touching *local* register `i` actually
//!   touches the *global* register `σ_p[i]`. The permutation is a [`Wiring`],
//!   and only the executor applies it.
//!
//! ## Architecture
//!
//! * [`Wiring`] — a validated permutation of `0..m` with composition,
//!   inversion, and enumeration (the model checker explores all wirings).
//! * [`SharedMemory`] — the ground-truth register array plus one wiring per
//!   processor; tracks the last writer of every register so analyses can
//!   compute the paper's *reads-from* relation (Section 4).
//! * [`Process`] — a deterministic Mealy machine: the executor feeds the
//!   result of the previous shared-memory access ([`StepInput`]) and receives
//!   the next access ([`Action`]). One shared-memory access per step, exactly
//!   as in the paper's model; local computation is folded in between accesses
//!   the way PlusCal folds statements between labels.
//! * [`Executor`] — drives a set of processes against a [`SharedMemory`]
//!   under a pluggable [`Scheduler`], producing a [`Trace`].
//! * [`schedule`] — round-robin, seeded-random, solo, scripted, and lasso
//!   (ultimately-periodic) schedules; the latter make reasoning about
//!   *infinite* executions exact (Section 4's stable views).
//! * [`threaded`] — a real-concurrency runtime that runs the same `Process`
//!   machines on OS threads against lock-protected (hence atomic) registers.
//! * [`chaos`] — fault injection for the threaded runtime: per-processor
//!   crash-stop / poised-crash / stall / panic plans executed under a
//!   supervisor with heartbeats and deadlines, yielding structured
//!   per-processor outcomes.
//!
//! ## Quick example
//!
//! ```
//! use fa_memory::{Executor, SharedMemory, Wiring, Process, Action, StepInput};
//!
//! /// A processor that writes its input to local register 0 and halts.
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! struct WriteOnce { input: u32, wrote: bool }
//!
//! impl Process for WriteOnce {
//!     type Value = u32;
//!     type Output = ();
//!     fn step(&mut self, _input: StepInput<u32>) -> Action<u32, ()> {
//!         if self.wrote { return Action::Halt; }
//!         self.wrote = true;
//!         Action::write(0, self.input)
//!     }
//! }
//!
//! let procs = vec![WriteOnce { input: 7, wrote: false },
//!                  WriteOnce { input: 9, wrote: false }];
//! let wirings = vec![Wiring::identity(2), Wiring::from_perm(vec![1, 0]).unwrap()];
//! let memory = SharedMemory::new(2, 0u32, wirings).unwrap();
//! let mut exec = Executor::new(procs, memory).unwrap();
//! exec.run_round_robin(100).unwrap();
//! // Processor 0 wrote global register 0; processor 1 wrote global register 1.
//! assert_eq!(*exec.memory().read_global(fa_memory::RegId(0)), 7);
//! assert_eq!(*exec.memory().read_global(fa_memory::RegId(1)), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
mod error;
mod executor;
mod ids;
mod memory;
mod process;
pub mod replay;
pub mod schedule;
pub mod threaded;
mod trace;
mod wiring;

pub use error::MemoryError;
pub use executor::{Executor, RunOutcome, StepOutcome};
pub use ids::{LocalRegId, ProcId, RegId};
pub use memory::SharedMemory;
pub use process::{Action, Process, StepInput, Versioned};
pub use replay::ReplayScript;
pub use schedule::{
    BoundedDelayScheduler, CrashingScheduler, LassoSchedule, PctScheduler, RandomScheduler,
    RoundRobin, Scheduler, ScriptedSchedule, SoloScheduler,
};
pub use trace::{Event, EventKind, Trace};
pub use wiring::Wiring;

//! Register wirings: the private permutations of the fully-anonymous model.
//!
//! For each processor `p` there is a permutation `σ_p` of the register
//! indices, fixed arbitrarily at initialization and unknown to every
//! processor, such that an instruction by `p` on *local* register `i`
//! accesses *global* register `σ_p[i]` (paper, Section 2). A [`Wiring`] is
//! such a permutation, validated at construction.

use core::fmt;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{LocalRegId, MemoryError, RegId};

/// A validated permutation of `0..m` mapping a processor's local register
/// names to ground-truth register names.
///
/// ```
/// use fa_memory::{Wiring, LocalRegId, RegId};
///
/// let w = Wiring::from_perm(vec![2, 0, 1]).unwrap();
/// assert_eq!(w.global(LocalRegId(0)), RegId(2));
/// assert_eq!(w.local(RegId(2)), LocalRegId(0));
/// assert_eq!(w.len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Wiring {
    /// `forward[local] == global`.
    forward: Vec<usize>,
    /// `inverse[global] == local`.
    inverse: Vec<usize>,
}

impl Wiring {
    /// The identity wiring on `m` registers: local names coincide with
    /// global names. A system in which *every* processor has the identity
    /// wiring is exactly the processor-anonymous (named-memory) model used by
    /// the Guerraoui–Ruppert baseline.
    ///
    /// ```
    /// use fa_memory::{Wiring, LocalRegId, RegId};
    /// let w = Wiring::identity(4);
    /// assert_eq!(w.global(LocalRegId(3)), RegId(3));
    /// ```
    #[must_use]
    pub fn identity(m: usize) -> Self {
        let forward: Vec<usize> = (0..m).collect();
        Wiring {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Builds a wiring from an explicit permutation vector where
    /// `perm[local] == global`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::NotAPermutation`] if `perm` is not a
    /// permutation of `0..perm.len()`.
    pub fn from_perm(perm: Vec<usize>) -> Result<Self, MemoryError> {
        let m = perm.len();
        let mut seen = vec![false; m];
        for &g in &perm {
            if g >= m || seen[g] {
                return Err(MemoryError::NotAPermutation { mapping: perm });
            }
            seen[g] = true;
        }
        let mut inverse = vec![0usize; m];
        for (local, &global) in perm.iter().enumerate() {
            inverse[global] = local;
        }
        Ok(Wiring {
            forward: perm,
            inverse,
        })
    }

    /// Samples a uniformly random wiring on `m` registers.
    ///
    /// ```
    /// use fa_memory::Wiring;
    /// use rand::SeedableRng;
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    /// let w = Wiring::random(5, &mut rng);
    /// assert_eq!(w.len(), 5);
    /// ```
    #[must_use]
    pub fn random<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Self {
        let mut forward: Vec<usize> = (0..m).collect();
        forward.shuffle(rng);
        Self::from_perm(forward).expect("shuffled identity is a permutation")
    }

    /// A cyclic-shift wiring: local `i` maps to global `(i + shift) mod m`.
    ///
    /// Cyclic shifts are the canonical adversarial wirings in covering
    /// arguments (each processor's "first register" is a different global
    /// register), used by the lower-bound construction of Section 2.1.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn cyclic_shift(m: usize, shift: usize) -> Self {
        assert!(m > 0, "cyclic_shift requires at least one register");
        let forward: Vec<usize> = (0..m).map(|i| (i + shift) % m).collect();
        Self::from_perm(forward).expect("cyclic shift is a permutation")
    }

    /// Number of registers in the wiring's domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the wiring has an empty domain. (Never true for wirings used
    /// in a valid system, since the model requires `M > 0`.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The global register accessed when this processor names local
    /// register `local`, i.e. `σ_p[local]`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    #[must_use]
    pub fn global(&self, local: LocalRegId) -> RegId {
        RegId(self.forward[local.0])
    }

    /// The local name under which this processor sees global register
    /// `global`, i.e. `σ_p⁻¹[global]`.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    #[must_use]
    pub fn local(&self, global: RegId) -> LocalRegId {
        LocalRegId(self.inverse[global.0])
    }

    /// The inverse wiring.
    ///
    /// ```
    /// use fa_memory::{Wiring, LocalRegId, RegId};
    /// let w = Wiring::from_perm(vec![1, 2, 0]).unwrap();
    /// let inv = w.inverse();
    /// assert_eq!(inv.global(LocalRegId(1)), RegId(0));
    /// ```
    #[must_use]
    pub fn inverse(&self) -> Wiring {
        Wiring {
            forward: self.inverse.clone(),
            inverse: self.forward.clone(),
        }
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    ///
    /// Useful for symmetry reduction in the model checker: relabeling the
    /// global registers by a permutation `π` turns each wiring `σ` into
    /// `π ∘ σ`.
    ///
    /// # Panics
    ///
    /// Panics if the two wirings have different domain sizes.
    #[must_use]
    pub fn compose(&self, other: &Wiring) -> Wiring {
        assert_eq!(
            self.len(),
            other.len(),
            "composed wirings must have equal domains"
        );
        let forward: Vec<usize> = (0..self.len())
            .map(|i| self.forward[other.forward[i]])
            .collect();
        Self::from_perm(forward).expect("composition of permutations is a permutation")
    }

    /// The permutation as a slice: `perm[local] == global`.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.forward
    }

    /// Enumerates all `m!` wirings on `m` registers in lexicographic order.
    ///
    /// Used by the model checker to quantify over every possible wiring of a
    /// processor. Beware of factorial growth; intended for `m ≤ 6`.
    ///
    /// ```
    /// use fa_memory::Wiring;
    /// assert_eq!(Wiring::enumerate(3).count(), 6);
    /// assert_eq!(Wiring::enumerate(1).count(), 1);
    /// ```
    pub fn enumerate(m: usize) -> impl Iterator<Item = Wiring> {
        Permutations::new(m).map(|p| Wiring::from_perm(p).expect("enumerated permutation"))
    }
}

impl fmt::Display for Wiring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[")?;
        for (i, g) in self.forward.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over all permutations of `0..m` in lexicographic order.
#[derive(Debug)]
struct Permutations {
    next: Option<Vec<usize>>,
}

impl Permutations {
    fn new(m: usize) -> Self {
        Permutations {
            next: Some((0..m).collect()),
        }
    }
}

impl Iterator for Permutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        // Compute the lexicographic successor of `current`.
        let mut succ = current.clone();
        let n = succ.len();
        // Find the longest non-increasing suffix.
        let mut i = n;
        while i >= 2 && succ[i - 2] >= succ[i - 1] {
            i -= 1;
        }
        if i >= 2 {
            let pivot = i - 2;
            // Find rightmost element greater than the pivot.
            let mut j = n - 1;
            while succ[j] <= succ[pivot] {
                j -= 1;
            }
            succ.swap(pivot, j);
            succ[pivot + 1..].reverse();
            self.next = Some(succ);
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn identity_maps_to_self() {
        let w = Wiring::identity(5);
        for i in 0..5 {
            assert_eq!(w.global(LocalRegId(i)), RegId(i));
            assert_eq!(w.local(RegId(i)), LocalRegId(i));
        }
    }

    #[test]
    fn from_perm_rejects_duplicates() {
        assert!(matches!(
            Wiring::from_perm(vec![0, 0, 1]),
            Err(MemoryError::NotAPermutation { .. })
        ));
    }

    #[test]
    fn from_perm_rejects_out_of_range() {
        assert!(matches!(
            Wiring::from_perm(vec![0, 3, 1]),
            Err(MemoryError::NotAPermutation { .. })
        ));
    }

    #[test]
    fn from_perm_accepts_empty() {
        let w = Wiring::from_perm(vec![]).unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn cyclic_shift_wraps() {
        let w = Wiring::cyclic_shift(3, 1);
        assert_eq!(w.global(LocalRegId(0)), RegId(1));
        assert_eq!(w.global(LocalRegId(2)), RegId(0));
    }

    #[test]
    fn cyclic_shift_zero_is_identity() {
        assert_eq!(Wiring::cyclic_shift(4, 0), Wiring::identity(4));
        assert_eq!(Wiring::cyclic_shift(4, 4), Wiring::identity(4));
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn cyclic_shift_zero_registers_panics() {
        let _ = Wiring::cyclic_shift(0, 1);
    }

    #[test]
    fn enumerate_counts_factorial() {
        assert_eq!(Wiring::enumerate(0).count(), 1);
        assert_eq!(Wiring::enumerate(1).count(), 1);
        assert_eq!(Wiring::enumerate(2).count(), 2);
        assert_eq!(Wiring::enumerate(3).count(), 6);
        assert_eq!(Wiring::enumerate(4).count(), 24);
    }

    #[test]
    fn enumerate_is_lexicographic_and_distinct() {
        let all: Vec<Vec<usize>> = Wiring::enumerate(4)
            .map(|w| w.as_slice().to_vec())
            .collect();
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(all, sorted, "enumeration must be sorted and duplicate-free");
    }

    #[test]
    fn display_shows_mapping() {
        let w = Wiring::from_perm(vec![2, 0, 1]).unwrap();
        assert_eq!(w.to_string(), "σ[2 0 1]");
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let w = Wiring::from_perm(vec![2, 0, 1]).unwrap();
        assert_eq!(w.compose(&w.inverse()), Wiring::identity(3));
        assert_eq!(w.inverse().compose(&w), Wiring::identity(3));
    }

    proptest! {
        #[test]
        fn random_wiring_is_valid(seed in any::<u64>(), m in 1usize..12) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let w = Wiring::random(m, &mut rng);
            // Round-trips hold for every index.
            for i in 0..m {
                prop_assert_eq!(w.local(w.global(LocalRegId(i))), LocalRegId(i));
                prop_assert_eq!(w.global(w.local(RegId(i))), RegId(i));
            }
        }

        #[test]
        fn inverse_involution(seed in any::<u64>(), m in 1usize..10) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let w = Wiring::random(m, &mut rng);
            prop_assert_eq!(w.inverse().inverse(), w);
        }

        #[test]
        fn compose_associative(seed in any::<u64>(), m in 1usize..8) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let a = Wiring::random(m, &mut rng);
            let b = Wiring::random(m, &mut rng);
            let c = Wiring::random(m, &mut rng);
            prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
        }
    }
}

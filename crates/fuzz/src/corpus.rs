//! The seed corpus: committed regression artifacts for schedules the paper
//! singles out as adversarial.
//!
//! Two artifacts ship with the repository (under `corpus/`):
//!
//! * **Figure 2** — the pathological lasso schedule of Section 4.1, replayed
//!   against the *snapshot* algorithm (the level mechanism the pathology
//!   motivates). A clean fixture: no oracle fires, and the pinned end state
//!   documents how the level mechanism defuses the schedule — `p1` soundly
//!   terminates with `{1}` once every register holds `{1}`, after which the
//!   `p2`/`p3` chase resolves into comparable views.
//! * **E13 unseen competitor** — the covered-competitor consensus schedule
//!   with the naive (SWMR-style) decision rule injected: `p1` decides off a
//!   sole-value snapshot while covered `p0` later decides its own value. A
//!   violation fixture: replay must reproduce `consensus.agreement`.
//!
//! Both builders are pure functions of nothing, so the committed JSON can be
//! regenerated at any time and a test pins `file == builder`.

use fa_core::{ConsensusProcess, SnapRegister};
use fa_memory::{Executor, ProcId, Scheduler, SharedMemory, Wiring};

use crate::case::{Algo, FuzzCase};
use crate::repro::ReproArtifact;

fn identity_wirings(n: usize) -> Vec<Vec<usize>> {
    (0..n).map(|_| (0..n).collect()).collect()
}

/// The Figure 2 pathological schedule as a clean snapshot fixture.
///
/// Rebuilds the paper's 3-processor system (inputs `1,2,3`, `p1` wired
/// `local i ↦ global (i+1) mod 3`, `p2`/`p3` identity) and flattens the
/// rows 1–4 prefix plus three rows 5–13 cycles of the lasso into a scripted
/// schedule. The expected end-state pattern is pinned by a deterministic
/// replay at build time: against the write–scan loop this schedule traps
/// `p2`/`p3` in incomparable views forever, while the level-based snapshot
/// defuses it (`p1` terminates soundly and the chase resolves), so the
/// fixture both exercises the adversarial schedule and pins the defusal.
///
/// # Panics
///
/// Panics if the replay reports a violation — that would mean a shipped
/// oracle rejects the paper's own execution.
#[must_use]
pub fn figure2_artifact() -> ReproArtifact {
    let wirings: Vec<Vec<usize>> = fa_core::figure2::core_wirings()
        .iter()
        .map(|w| w.as_slice().to_vec())
        .collect();
    // Flatten prefix + 3 cycles of the lasso (the cycle state has period 1,
    // so three repetitions overshoot comfortably).
    let mut lasso = fa_core::figure2::core_schedule();
    let live: Vec<ProcId> = (0..3).map(ProcId).collect();
    let steps: Vec<ProcId> = (0..20 + 3 * 36)
        .map(|_| lasso.next(&live).expect("lasso schedules forever"))
        .collect();
    let case = FuzzCase {
        label: "corpus-fig2-pathological".to_string(),
        algo: Algo::Snapshot {
            terminate_level: None,
        },
        inputs: vec![1, 2, 3],
        registers: 3,
        wirings,
        crash_after: vec![None; 3],
        schedule_seed: 0,
        pct_depth: 0,
        pct_horizon: 2,
        budget: steps.len(),
    };
    let result = crate::driver::replay_case(&case, &steps);
    assert!(
        result.violation.is_none(),
        "the Figure 2 schedule must not trip any oracle: {:?}",
        result.violation
    );
    ReproArtifact::fixture("corpus-fig2-pathological", case, &steps, result.pattern)
}

/// The E13 unseen-competitor consensus schedule with the naive decision
/// rule injected, as a violation fixture.
///
/// Two processors, identity wirings. `p0` steps twice (write + first scan
/// read — leaving it covered, poised mid-scan), then `p1` runs solo: under
/// the naive rule its snapshot shows only its own value, so it decides
/// instantly. Then `p0` resumes and decides its *own* value — disagreement,
/// caught by the `consensus.agreement` oracle on replay.
///
/// # Panics
///
/// Panics if the construction no longer disagrees (i.e. someone "fixed" the
/// injected bug) — the committed corpus would then be stale.
#[must_use]
pub fn e13_artifact() -> ReproArtifact {
    let n = 2;
    let procs: Vec<ConsensusProcess<u32>> = vec![
        ConsensusProcess::with_naive_unseen_rule(1, n),
        ConsensusProcess::with_naive_unseen_rule(2, n),
    ];
    let memory = SharedMemory::new(n, SnapRegister::default(), vec![Wiring::identity(n); n])
        .expect("identity wirings are well-formed");
    let mut exec = Executor::new(procs, memory).expect("two processors");
    exec.record_trace(true);
    // p0 writes and starts scanning, then stalls covered.
    exec.step_proc(ProcId(0)).expect("p0 live");
    exec.step_proc(ProcId(0)).expect("p0 live");
    // p1 runs alone: naive rule decides off the sole-value snapshot.
    exec.run_solo(ProcId(1), 200).expect("solo run");
    // p0 resumes and decides its own value.
    exec.run_solo(ProcId(0), 200).expect("solo run");
    let d0 = exec.first_output(ProcId(0)).copied();
    let d1 = exec.first_output(ProcId(1)).copied();
    assert!(
        d0.is_some() && d1.is_some() && d0 != d1,
        "the naive rule must disagree on this schedule (got {d0:?} vs {d1:?})"
    );
    let steps: Vec<ProcId> = exec
        .trace()
        .expect("trace recorded")
        .events()
        .iter()
        .map(|e| e.proc)
        .collect();

    let case = FuzzCase {
        label: "corpus-e13-unseen-competitor".to_string(),
        algo: Algo::Consensus {
            naive_unseen_rule: true,
        },
        inputs: vec![1, 2],
        registers: n,
        wirings: identity_wirings(n),
        crash_after: vec![None; n],
        schedule_seed: 0,
        pct_depth: 0,
        pct_horizon: 2,
        budget: steps.len(),
    };
    let artifact = ReproArtifact::new(
        "corpus-e13-unseen-competitor",
        case,
        &steps,
        Some("consensus.agreement".to_string()),
    );
    assert!(
        artifact.replay_confirms(),
        "E13 replay must reproduce the agreement violation"
    );
    artifact
}

//! The fuzz driver: case execution, parallel campaigns, and the
//! delta-debugging schedule shrinker.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use fa_core::{ConsensusProcess, RenamingProcess, SnapRegister, SnapshotProcess};
use fa_memory::{
    CrashingScheduler, Executor, MemoryError, PctScheduler, ProcId, Process, RandomScheduler,
    Scheduler, ScriptedSchedule, SharedMemory,
};
use fa_obs::{FuzzEvent, MetricRegistry, Probe};

use crate::case::{Algo, AlgoKind, CaseGen, FuzzCase};
use crate::oracle::{ConsensusOracle, Oracle, RenamingOracle, SnapshotOracle, Violation};
use crate::repro::ReproArtifact;
use crate::telemetry::FuzzTelemetry;

/// Outcome of one executed case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Executor steps actually taken.
    pub steps: usize,
    /// First oracle violation, if any.
    pub violation: Option<Violation>,
    /// The executed schedule (one entry per step, from the trace). This is
    /// the complete causal record: crashes and budget exhaustion are both
    /// just absences from it.
    pub schedule: Vec<ProcId>,
    /// Canonical end-state pattern (per-processor stable views for
    /// snapshot/renaming, the sorted decision multiset for consensus) — the
    /// campaign's coverage proxy.
    pub pattern: Vec<Vec<u32>>,
    /// Per-processor first outputs rendered to JSON, for end-state
    /// comparisons in corpus tests.
    pub outputs: Vec<Option<serde_json::Value>>,
}

/// Runs one case under its own adversary: [`PctScheduler`] when
/// `pct_depth > 0`, the uniform [`RandomScheduler`] otherwise, either one
/// wrapped in a [`CrashingScheduler`] carrying the case's crash set.
///
/// # Panics
///
/// Panics if the case is malformed (non-permutation wirings, fewer than two
/// processors) — generated and corpus cases never are.
#[must_use]
pub fn run_case(case: &FuzzCase) -> CaseResult {
    let n = case.n();
    let rng = ChaCha8Rng::seed_from_u64(case.schedule_seed);
    if case.pct_depth > 0 {
        let pct = PctScheduler::new(rng, n, case.pct_depth, case.pct_horizon);
        dispatch(case, &mut with_crashes(pct, case))
    } else {
        dispatch(case, &mut with_crashes(RandomScheduler::new(rng), case))
    }
}

/// Replays a case under an explicit schedule (halted entries skipped), with
/// the crash set disabled: a scripted schedule already encodes every
/// absence. This is the deterministic replay path used by the shrinker and
/// by repro artifacts.
#[must_use]
pub fn replay_case(case: &FuzzCase, schedule: &[ProcId]) -> CaseResult {
    let mut sched = ScriptedSchedule::new(schedule.to_vec()).skip_halted();
    let mut scripted = case.clone();
    scripted.crash_after = vec![None; case.n()];
    scripted.budget = case.budget.max(schedule.len());
    dispatch(&scripted, &mut sched)
}

fn with_crashes<S: Scheduler>(inner: S, case: &FuzzCase) -> CrashingScheduler<S> {
    let mut crashing = CrashingScheduler::new(inner, case.n());
    for (i, crash) in case.crash_after.iter().enumerate() {
        if let Some(k) = crash {
            crashing = crashing.crash_after(ProcId(i), *k);
        }
    }
    crashing
}

fn dispatch(case: &FuzzCase, sched: &mut dyn Scheduler) -> CaseResult {
    let wirings = case.wirings();
    match &case.algo {
        Algo::Snapshot { terminate_level } => {
            let procs: Vec<SnapshotProcess<u32>> = case
                .inputs
                .iter()
                .map(|&x| match terminate_level {
                    Some(l) => SnapshotProcess::with_terminate_level(x, case.registers, *l),
                    None => SnapshotProcess::new(x, case.registers),
                })
                .collect();
            let memory = SharedMemory::new(case.registers, SnapRegister::default(), wirings)
                .expect("case wirings are well-formed");
            let exec = Executor::new(procs, memory).expect("case has >= 2 processors");
            let oracle = SnapshotOracle::new(&case.inputs, case.registers);
            drive(case, exec, oracle, sched, |exec| {
                views_pattern(exec, case.n(), SnapshotProcess::view)
            })
        }
        Algo::Renaming => {
            let procs: Vec<RenamingProcess<u32>> = case
                .inputs
                .iter()
                .map(|&x| RenamingProcess::new(x, case.registers))
                .collect();
            let memory = SharedMemory::new(case.registers, SnapRegister::default(), wirings)
                .expect("case wirings are well-formed");
            let exec = Executor::new(procs, memory).expect("case has >= 2 processors");
            let oracle = RenamingOracle::new(&case.inputs);
            drive(case, exec, oracle, sched, |exec| {
                views_pattern(exec, case.n(), RenamingProcess::view)
            })
        }
        Algo::Consensus { naive_unseen_rule } => {
            let procs: Vec<ConsensusProcess<u32>> = case
                .inputs
                .iter()
                .map(|&x| {
                    if *naive_unseen_rule {
                        ConsensusProcess::with_naive_unseen_rule(x, case.registers)
                    } else {
                        ConsensusProcess::new(x, case.registers)
                    }
                })
                .collect();
            let memory = SharedMemory::new(case.registers, SnapRegister::default(), wirings)
                .expect("case wirings are well-formed");
            let exec = Executor::new(procs, memory).expect("case has >= 2 processors");
            let oracle = ConsensusOracle::new(&case.inputs);
            drive(case, exec, oracle, sched, |exec| {
                let mut decided: Vec<u32> = (0..case.n())
                    .filter_map(|i| exec.first_output(ProcId(i)).copied())
                    .collect();
                decided.sort_unstable();
                vec![decided]
            })
        }
    }
}

/// Canonical per-processor view pattern for snapshot-family algorithms.
fn views_pattern<P, F>(exec: &Executor<P>, n: usize, view_of: F) -> Vec<Vec<u32>>
where
    P: Process,
    P::Value: Clone,
    P::Output: Clone,
    F: Fn(&P) -> &fa_core::View<u32>,
{
    (0..n)
        .map(|i| view_of(exec.process(ProcId(i))).iter().collect())
        .collect()
}

fn drive<P, O, F>(
    case: &FuzzCase,
    mut exec: Executor<P>,
    mut oracle: O,
    sched: &mut dyn Scheduler,
    pattern_of: F,
) -> CaseResult
where
    P: Process,
    P::Value: Clone + std::fmt::Debug,
    P::Output: Clone + std::fmt::Debug + serde::Serialize,
    O: Oracle<P>,
    F: Fn(&Executor<P>) -> Vec<Vec<u32>>,
{
    exec.record_trace(true);

    let mut violation = None;
    while exec.total_steps() < case.budget {
        let live = exec.live_procs();
        if live.is_empty() {
            break;
        }
        let Some(p) = sched.next(&live) else { break };
        if !live.contains(&p) {
            // A scripted replay may name a processor that halted earlier
            // than in the original run (the shrinker removes steps); skip.
            continue;
        }
        match exec.step_proc(p) {
            Ok(_) => {}
            Err(MemoryError::ScheduledHalted { .. }) => continue,
            Err(e) => panic!("executor rejected a live processor: {e:?}"),
        }
        if let Err(v) = oracle.check_step(&exec, p) {
            violation = Some(v);
            break;
        }
    }
    if violation.is_none() {
        if let Err(v) = oracle.check_end(&exec) {
            violation = Some(v);
        }
    }

    let schedule = exec
        .trace()
        .map(|t| t.events().iter().map(|e| e.proc).collect())
        .unwrap_or_default();
    let outputs = (0..case.n())
        .map(|i| exec.first_output(ProcId(i)).map(serde_json::to_value))
        .collect();
    CaseResult {
        steps: exec.total_steps(),
        violation,
        schedule,
        pattern: pattern_of(&exec),
        outputs,
    }
}

/// Delta-debugs a violating schedule down to a locally minimal one: removing
/// any single remaining step no longer reproduces a violation.
///
/// Classic ddmin over contiguous chunks with halving granularity; each
/// candidate is checked by deterministic replay ([`replay_case`]). The crash
/// set needs no separate minimization — a schedule prefix *is* a crash
/// pattern (a crashed processor is exactly one that takes no further steps).
#[must_use]
pub fn shrink_schedule(case: &FuzzCase, schedule: &[ProcId]) -> Vec<ProcId> {
    let mut current = schedule.to_vec();
    if replay_case(case, &current).violation.is_none() {
        // Not reproducible by replay (should not happen for these
        // deterministic processes); return unshrunk rather than lie.
        return current;
    }
    let mut chunk = current.len().div_ceil(2).max(1);
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < current.len() {
            let end = (i + chunk).min(current.len());
            let mut candidate = current[..i].to_vec();
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && replay_case(case, &candidate).violation.is_some() {
                current = candidate;
                reduced = true;
                // Stay at the same offset: the next chunk slid into place.
            } else {
                i += chunk;
            }
        }
        if chunk > 1 {
            chunk = chunk.div_ceil(2).max(1);
        } else if !reduced {
            break;
        }
    }
    current
}

/// Campaign configuration for [`run_campaign`].
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign label (goes into telemetry and artifact labels).
    pub campaign: String,
    /// Number of cases to generate and run.
    pub cases: usize,
    /// Campaign seed: with the same generator this reproduces every case.
    pub seed: u64,
    /// Worker threads (`None` = available parallelism).
    pub jobs: Option<usize>,
    /// Case generator.
    pub gen: CaseGen,
    /// Optional live-metric registry; when attached, workers record
    /// `fuzz.*` counters, spans, and the per-case step histogram. Never
    /// affects the deterministic report.
    pub telemetry: Option<Arc<MetricRegistry>>,
}

impl CampaignConfig {
    fn worker_count(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }
}

/// Per-algorithm campaign tallies (deterministic across worker counts).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlgoTally {
    /// Cases run for this algorithm.
    pub cases: usize,
    /// Violating cases.
    pub violations: usize,
    /// Total executor steps.
    pub total_steps: u64,
    /// Distinct end-state patterns.
    pub distinct_patterns: usize,
}

/// Campaign outcome. Everything except `elapsed_ns` is deterministic in
/// `(generator, seed, cases)` — independent of the worker count.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CampaignReport {
    /// Cases run.
    pub cases: usize,
    /// Total executor steps over all cases.
    pub total_steps: u64,
    /// Indices of violating cases, ascending.
    pub violations: Vec<usize>,
    /// Distinct end-state patterns across all cases.
    pub distinct_patterns: usize,
    /// Per-algorithm tallies in [`AlgoKind`] declaration order.
    pub per_algo: Vec<(AlgoKind, AlgoTally)>,
    /// The lowest-index violation, shrunk to a minimal scripted schedule and
    /// packaged as a replayable artifact.
    pub first_repro: Option<ReproArtifact>,
    /// Wall-clock duration (excluded from deterministic comparisons).
    pub elapsed_ns: u64,
}

struct CaseSummary {
    algo: AlgoKind,
    steps: usize,
    violation: Option<Violation>,
    pattern: Vec<Vec<u32>>,
    /// Executed schedule, kept only for violating cases (shrinker input).
    schedule: Option<Vec<ProcId>>,
}

/// Runs a fuzz campaign across a worker pool: atomic work claiming,
/// per-slot results, aggregation in case-index order, so the report is
/// identical for any `jobs` value. Every case runs to completion (no early
/// abort on violation); the lowest-index violation is then shrunk serially
/// and packaged as the campaign's repro artifact. Emits one [`FuzzEvent`]
/// per algorithm family through `probe`.
///
/// # Panics
///
/// Panics only on executor misuse (a bug in this crate, not in a case).
pub fn run_campaign<Pr: Probe>(config: &CampaignConfig, probe: &mut Pr) -> CampaignReport {
    let total = config.cases;
    let jobs = config.worker_count().clamp(1, total.max(1));
    let start = Instant::now();
    let telemetry = config
        .telemetry
        .as_deref()
        .map(FuzzTelemetry::from_registry);

    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<CaseSummary>> = (0..total).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let generate_guard = telemetry.as_ref().map(|t| t.generate.enter());
                let case = campaign_case(config, i);
                drop(generate_guard);
                let execute_guard = telemetry.as_ref().map(|t| t.execute.enter());
                let result = run_case(&case);
                drop(execute_guard);
                let violating = result.violation.is_some();
                if let Some(tel) = &telemetry {
                    tel.cases_done.inc();
                    tel.steps_total.add(result.steps as u64);
                    if violating {
                        tel.violations.inc();
                    }
                    tel.case_steps.record(result.steps as u64);
                }
                let _ = slots[i].set(CaseSummary {
                    algo: case.algo.kind(),
                    steps: result.steps,
                    violation: result.violation,
                    pattern: result.pattern,
                    schedule: violating.then_some(result.schedule),
                });
            });
        }
    });

    let mut violations = Vec::new();
    let mut total_steps = 0u64;
    let mut patterns: BTreeSet<Vec<Vec<u32>>> = BTreeSet::new();
    let mut algo_patterns: BTreeMap<AlgoKind, BTreeSet<Vec<Vec<u32>>>> = BTreeMap::new();
    let mut per_algo: Vec<(AlgoKind, AlgoTally)> =
        [AlgoKind::Snapshot, AlgoKind::Renaming, AlgoKind::Consensus]
            .iter()
            .map(|k| (*k, AlgoTally::default()))
            .collect();
    let mut first_repro = None;

    for (i, slot) in slots.iter().enumerate() {
        let summary = slot.get().expect("every claimed case completes");
        total_steps += summary.steps as u64;
        patterns.insert(summary.pattern.clone());
        let tally = &mut per_algo
            .iter_mut()
            .find(|(k, _)| *k == summary.algo)
            .expect("all kinds present")
            .1;
        tally.cases += 1;
        tally.total_steps += summary.steps as u64;
        algo_patterns
            .entry(summary.algo)
            .or_default()
            .insert(summary.pattern.clone());
        if let Some(v) = &summary.violation {
            violations.push(i);
            tally.violations += 1;
            if first_repro.is_none() {
                let case = campaign_case(config, i);
                let schedule = summary
                    .schedule
                    .clone()
                    .expect("violating cases keep their schedules");
                let shrink_guard = telemetry.as_ref().map(|t| t.shrink.enter());
                let minimal = shrink_schedule(&case, &schedule);
                drop(shrink_guard);
                first_repro = Some(ReproArtifact::new(
                    format!("{}-repro-{i}", config.campaign),
                    case,
                    &minimal,
                    Some(v.to_string()),
                ));
            }
        }
    }
    for (kind, tally) in &mut per_algo {
        tally.distinct_patterns = algo_patterns.get(kind).map_or(0, BTreeSet::len);
    }

    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    for (kind, tally) in &per_algo {
        if tally.cases == 0 {
            continue;
        }
        probe.on_fuzz(&FuzzEvent {
            campaign: config.campaign.clone(),
            algo: kind.name().to_string(),
            jobs,
            cases: tally.cases,
            violations: tally.violations,
            total_steps: tally.total_steps,
            distinct_patterns: tally.distinct_patterns,
            elapsed_ns,
        });
    }

    CampaignReport {
        cases: total,
        total_steps,
        violations,
        distinct_patterns: patterns.len(),
        per_algo,
        first_repro,
        elapsed_ns,
    }
}

fn campaign_case(config: &CampaignConfig, index: usize) -> FuzzCase {
    let mut case = config.gen.case(config.seed, index);
    case.label = format!("{}-case-{index}", config.campaign);
    case
}

//! Fuzz case description and seeded case generation.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use fa_memory::Wiring;

/// Which algorithm family a case exercises, with its injected-bug knobs.
///
/// The knobs exist so the fuzz driver can prove it *would* catch a bug:
/// campaigns over the unmodified algorithms must be clean, campaigns with a
/// knob flipped must find and shrink a counterexample.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Wait-free snapshot. `terminate_level: Some(l)` lowers the termination
    /// threshold from the register count to `l` (the paper's ablation knob).
    Snapshot {
        /// Injected termination level; `None` = the shipped algorithm.
        terminate_level: Option<usize>,
    },
    /// Adaptive renaming on top of the snapshot.
    Renaming,
    /// Obstruction-free consensus. `naive_unseen_rule: true` injects
    /// Chandra's SWMR decision rule, unsound under anonymity (E13).
    Consensus {
        /// Injected naive decision rule; `false` = the shipped algorithm.
        naive_unseen_rule: bool,
    },
}

impl Algo {
    /// The family, without knobs.
    #[must_use]
    pub fn kind(&self) -> AlgoKind {
        match self {
            Algo::Snapshot { .. } => AlgoKind::Snapshot,
            Algo::Renaming => AlgoKind::Renaming,
            Algo::Consensus { .. } => AlgoKind::Consensus,
        }
    }

    /// Whether an injected-bug knob is active.
    #[must_use]
    pub fn has_injected_bug(&self) -> bool {
        match self {
            Algo::Snapshot { terminate_level } => terminate_level.is_some(),
            Algo::Renaming => false,
            Algo::Consensus { naive_unseen_rule } => *naive_unseen_rule,
        }
    }
}

/// Algorithm family without configuration — campaign bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlgoKind {
    /// Wait-free snapshot.
    Snapshot,
    /// Adaptive renaming.
    Renaming,
    /// Obstruction-free consensus.
    Consensus,
}

impl AlgoKind {
    /// Stable lower-case name for reports and telemetry.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Snapshot => "snapshot",
            AlgoKind::Renaming => "renaming",
            AlgoKind::Consensus => "consensus",
        }
    }
}

/// One generated fuzz case: everything needed to rebuild the system and the
/// adversary deterministically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// Human-readable provenance (campaign + index, or corpus name).
    pub label: String,
    /// Algorithm under test, with injected-bug knobs.
    pub algo: Algo,
    /// Per-processor inputs; `inputs.len()` is the processor count.
    /// Duplicates model the paper's group setting.
    pub inputs: Vec<u32>,
    /// Register count (always equal to the processor count for the shipped
    /// algorithms; kept explicit so corpus artifacts are self-describing).
    pub registers: usize,
    /// Private wiring permutation per processor.
    pub wirings: Vec<Vec<usize>>,
    /// Crash point per processor (`Some(k)` = crash after `k` of its own
    /// steps); all `None` in shrunk artifacts, where the schedule itself
    /// encodes every absence.
    pub crash_after: Vec<Option<usize>>,
    /// Seed for the adversary (PCT priorities + change points, or the
    /// uniform random scheduler when `pct_depth == 0`).
    pub schedule_seed: u64,
    /// Number of PCT priority-change points (0 = uniform random adversary).
    pub pct_depth: usize,
    /// PCT change-point horizon: change points are sampled in
    /// `[1, pct_horizon)`.
    pub pct_horizon: usize,
    /// Maximum executor steps for this case.
    pub budget: usize,
}

impl FuzzCase {
    /// Number of processors.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// Rebuilds the wirings.
    ///
    /// # Panics
    ///
    /// Panics if a stored wiring is not a permutation (corrupt artifact).
    #[must_use]
    pub fn wirings(&self) -> Vec<Wiring> {
        self.wirings
            .iter()
            .map(|w| Wiring::from_perm(w.clone()).expect("case wirings are permutations"))
            .collect()
    }
}

/// Seeded case generator: `case(seed, index)` is a pure function, so a
/// campaign is reproducible from `(generator config, campaign seed)` and any
/// single case can be regenerated from its index alone.
#[derive(Clone, Debug)]
pub struct CaseGen {
    /// System sizes to draw from (processors = registers).
    pub ns: Vec<usize>,
    /// PCT depths to draw from; include 0 for a uniform-random share.
    pub depths: Vec<usize>,
    /// Algorithm families, cycled by case index.
    pub algos: Vec<AlgoKind>,
    /// Whether to inject crashes (each processor crashes with probability
    /// 1/4 at a small step count).
    pub with_crashes: bool,
    /// Step budget per case.
    pub budget: usize,
    /// Injected bug applied to every generated case (`None` = fuzz the
    /// shipped algorithms).
    pub inject: Option<InjectedBug>,
}

/// An algorithm bug injected into every case of a campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedBug {
    /// Lower the snapshot termination level to the given value.
    SnapshotTerminateLevel(usize),
    /// Use the naive (unseen-competitor-blind) consensus decision rule.
    ConsensusNaiveRule,
}

impl CaseGen {
    /// The generator used by clean verification campaigns: all three
    /// algorithms, crashes on, PCT depths {0..=3}.
    #[must_use]
    pub fn standard(ns: Vec<usize>, budget: usize) -> Self {
        CaseGen {
            ns,
            depths: vec![0, 1, 2, 3],
            algos: vec![AlgoKind::Snapshot, AlgoKind::Renaming, AlgoKind::Consensus],
            with_crashes: true,
            budget,
            inject: None,
        }
    }

    /// Generates case `index` of the campaign with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if `ns`, `depths`, or `algos` is empty.
    #[must_use]
    pub fn case(&self, campaign_seed: u64, index: usize) -> FuzzCase {
        let mut rng = ChaCha8Rng::seed_from_u64(
            campaign_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let n = self.ns[rng.gen_range(0..self.ns.len())];
        let kind = self.algos[index % self.algos.len()];
        let algo = match (kind, self.inject) {
            (AlgoKind::Snapshot, Some(InjectedBug::SnapshotTerminateLevel(l))) => Algo::Snapshot {
                terminate_level: Some(l),
            },
            (AlgoKind::Snapshot, _) => Algo::Snapshot {
                terminate_level: None,
            },
            (AlgoKind::Renaming, _) => Algo::Renaming,
            (AlgoKind::Consensus, Some(InjectedBug::ConsensusNaiveRule)) => Algo::Consensus {
                naive_unseen_rule: true,
            },
            (AlgoKind::Consensus, _) => Algo::Consensus {
                naive_unseen_rule: false,
            },
        };
        // Inputs 1..=n; with probability ~1/3 collapse some into groups
        // (duplicates), the setting where the paper's tasks are subtle.
        let mut inputs: Vec<u32> = (1..=n as u32).collect();
        if rng.gen_range(0..3) == 0 {
            for i in 0..n {
                if rng.gen_range(0..2) == 0 {
                    inputs[i] = inputs[rng.gen_range(0..n)];
                }
            }
        }
        let wirings: Vec<Vec<usize>> = (0..n)
            .map(|_| Wiring::random(n, &mut rng).as_slice().to_vec())
            .collect();
        let crash_after: Vec<Option<usize>> = (0..n)
            .map(|_| {
                (self.with_crashes && rng.gen_range(0..4) == 0).then(|| rng.gen_range(0..12 * n))
            })
            .collect();
        let pct_depth = self.depths[rng.gen_range(0..self.depths.len())];
        // Horizon ≈ plausible run lengths: long enough for change points to
        // land anywhere interesting, short enough that early preemptions
        // (where covering bugs hide) stay likely.
        let pct_horizon = [16 * n, 48 * n, 96 * n][rng.gen_range(0..3)];
        FuzzCase {
            label: format!("case-{index}"),
            algo,
            inputs,
            registers: n,
            wirings,
            crash_after,
            schedule_seed: rng.next_u64(),
            pct_depth,
            pct_horizon,
            budget: self.budget,
        }
    }
}

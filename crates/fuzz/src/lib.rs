//! Schedule fuzzing for the fully-anonymous algorithms.
//!
//! The exhaustive model checker (`fa-modelcheck`) proves the paper's safety
//! properties, but only at small scope; the random-walk tests cover larger
//! systems with a uniform adversary that is weak at exposing rare
//! interleavings. This crate closes the gap with a fuzzing subsystem:
//!
//! * **Adversary** — campaigns schedule cases under
//!   [`fa_memory::PctScheduler`] (Probabilistic Concurrency Testing:
//!   priority scheduling with `d` random priority-change points) wrapped in
//!   [`fa_memory::CrashingScheduler`] for failure injection; depth 0 falls
//!   back to the uniform random adversary.
//! * **Oracles** ([`oracle`]) — the [`Oracle`](oracle::Oracle) trait lifts
//!   the invariants previously duplicated across `tests/` into reusable
//!   per-step checkers: snapshot comparability + self-inclusion and
//!   view/level monotonicity, renaming uniqueness and the `M(M+1)/2` name
//!   bound, consensus agreement/validity.
//! * **Driver** ([`driver`]) — generates cases from a seed
//!   ([`case::CaseGen`]): system size, wirings, crash set, PCT depth; runs
//!   each under a step budget; reports violations deterministically and
//!   emits [`fa_obs::FuzzEvent`] telemetry (cases/s, violations, distinct
//!   stable-view patterns seen).
//! * **Shrinker** ([`driver::shrink_schedule`]) — on a violation,
//!   delta-debugs the executed schedule (which subsumes the crash set: a
//!   crash is exactly the absence of further steps) down to a minimal
//!   [`fa_memory::ScriptedSchedule`].
//! * **Repro artifacts** ([`repro`]) — violations serialize to JSON holding
//!   the full case plus a [`fa_memory::ReplayScript`]; replaying the
//!   artifact deterministically reproduces the violation.
//! * **Corpus** ([`corpus`]) — committed regression artifacts: the Figure 2
//!   pathological schedule and the E13 unseen-competitor schedule.
//!
//! The `fuzz` binary in `crates/bench` drives campaigns from the command
//! line (`--cases/--budget/--depth/--seed/--jobs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod driver;
pub mod oracle;
pub mod repro;
pub mod telemetry;

pub use case::{Algo, AlgoKind, CaseGen, FuzzCase};
pub use driver::{
    replay_case, run_campaign, run_case, shrink_schedule, CampaignConfig, CampaignReport,
    CaseResult,
};
pub use oracle::{ConsensusOracle, Oracle, RenamingOracle, SnapshotOracle, Violation};
pub use repro::ReproArtifact;
pub use telemetry::FuzzTelemetry;

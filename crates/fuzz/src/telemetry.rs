//! Live-telemetry handle bundle for fuzz campaigns.
//!
//! Metric names are stable, dot-scoped identifiers (`fuzz.*`) shared with
//! the bench binaries and the `obs_report` trend tables:
//!
//! | name              | kind      | meaning                                    |
//! |-------------------|-----------|--------------------------------------------|
//! | `fuzz.cases_done` | counter   | cases finished across all workers          |
//! | `fuzz.steps_total`| counter   | executor steps taken across all cases      |
//! | `fuzz.violations` | counter   | violating cases seen so far                |
//! | `fuzz.generate`   | span      | case generation from the campaign seed     |
//! | `fuzz.execute`    | span      | case execution under its adversary         |
//! | `fuzz.shrink`     | span      | delta-debugging the first violation        |
//! | `fuzz.case_steps` | histogram | executor steps per finished case           |
//!
//! All handles record with relaxed atomics; attaching them never changes a
//! deterministic [`CampaignReport`](crate::CampaignReport).

use fa_obs::{Counter, LiveHistogram, MetricRegistry, Span};

/// Telemetry handles [`run_campaign`](crate::run_campaign) records into.
/// Cloning shares the underlying atomics, so every worker thread holds the
/// same bundle.
#[derive(Clone, Debug, Default)]
pub struct FuzzTelemetry {
    /// `fuzz.cases_done` — monotone across workers.
    pub cases_done: Counter,
    /// `fuzz.steps_total` — monotone across workers.
    pub steps_total: Counter,
    /// `fuzz.violations`.
    pub violations: Counter,
    /// `fuzz.generate`.
    pub generate: Span,
    /// `fuzz.execute`.
    pub execute: Span,
    /// `fuzz.shrink`.
    pub shrink: Span,
    /// `fuzz.case_steps`.
    pub case_steps: LiveHistogram,
}

impl FuzzTelemetry {
    /// Resolves the `fuzz.*` handles from `registry`.
    #[must_use]
    pub fn from_registry(registry: &MetricRegistry) -> Self {
        FuzzTelemetry {
            cases_done: registry.counter("fuzz.cases_done"),
            steps_total: registry.counter("fuzz.steps_total"),
            violations: registry.counter("fuzz.violations"),
            generate: registry.span("fuzz.generate"),
            execute: registry.span("fuzz.execute"),
            shrink: registry.span("fuzz.shrink"),
            case_steps: registry.histogram("fuzz.case_steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_resolve_to_shared_registry_metrics() {
        let registry = MetricRegistry::new();
        let a = FuzzTelemetry::from_registry(&registry);
        let b = FuzzTelemetry::from_registry(&registry);
        a.cases_done.inc();
        b.cases_done.inc();
        assert_eq!(registry.counter("fuzz.cases_done").get(), 2);
        a.steps_total.add(10);
        assert_eq!(b.steps_total.get(), 10);
    }
}

//! Replayable counterexample artifacts.
//!
//! A [`ReproArtifact`] is everything needed to reproduce a violation on any
//! machine: the full [`FuzzCase`] (algorithm, inputs, wirings) plus the
//! minimal [`ReplayScript`]. Artifacts serialize to JSON and are committed
//! under `corpus/` as regression fixtures or uploaded from CI when a fuzz
//! campaign fails.

use serde::{Deserialize, Serialize};

use fa_memory::{ProcId, ReplayScript};

use crate::case::FuzzCase;
use crate::driver::{replay_case, CaseResult};

/// Artifact format version, bumped on incompatible schema changes.
pub const REPRO_VERSION: u32 = 1;

/// A self-contained, replayable counterexample (or regression fixture).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReproArtifact {
    /// Artifact format version ([`REPRO_VERSION`]).
    pub version: u32,
    /// Human-readable provenance (campaign + case index, or corpus name).
    pub label: String,
    /// The complete case: algorithm knobs, inputs, wirings. The crash set
    /// is ignored on replay — the script already encodes every absence.
    pub case: FuzzCase,
    /// The (usually shrunk) schedule to replay.
    pub script: ReplayScript,
    /// Rendered violation this artifact reproduces; `None` for clean
    /// corpus fixtures that pin an interesting-but-correct end state.
    pub violation: Option<String>,
    /// Expected end-state pattern, for clean fixtures (`None` when the
    /// artifact documents a violation instead).
    pub expected_pattern: Option<Vec<Vec<u32>>>,
}

impl ReproArtifact {
    /// Packages a case and a schedule as a violation artifact.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        case: FuzzCase,
        schedule: &[ProcId],
        violation: Option<String>,
    ) -> Self {
        let label = label.into();
        ReproArtifact {
            version: REPRO_VERSION,
            script: ReplayScript {
                label: label.clone(),
                steps: schedule.to_vec(),
            },
            label,
            case,
            violation,
            expected_pattern: None,
        }
    }

    /// Packages a case, schedule, and expected end state as a clean
    /// regression fixture.
    #[must_use]
    pub fn fixture(
        label: impl Into<String>,
        case: FuzzCase,
        schedule: &[ProcId],
        expected_pattern: Vec<Vec<u32>>,
    ) -> Self {
        let mut artifact = Self::new(label, case, schedule, None);
        artifact.expected_pattern = Some(expected_pattern);
        artifact
    }

    /// Replays the artifact's script against a fresh copy of its system.
    ///
    /// Deterministic: processes are pure step machines, so the same script
    /// always produces the same [`CaseResult`].
    #[must_use]
    pub fn replay(&self) -> CaseResult {
        replay_case(&self.case, &self.script.steps)
    }

    /// Whether a replay reproduces what the artifact claims: the recorded
    /// violation's invariant for counterexamples, the expected end-state
    /// pattern for clean fixtures.
    #[must_use]
    pub fn replay_confirms(&self) -> bool {
        let result = self.replay();
        match (&self.violation, &self.expected_pattern) {
            (Some(expected), _) => result
                .violation
                .as_ref()
                .is_some_and(|v| expected.contains(&v.invariant)),
            (None, Some(pattern)) => result.violation.is_none() && result.pattern == *pattern,
            (None, None) => result.violation.is_none(),
        }
    }

    /// Serializes to pretty-printed JSON (the committed/uploaded format).
    ///
    /// # Panics
    ///
    /// Never panics for artifacts built by this crate (all fields are
    /// plain data).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifacts serialize")
    }

    /// Parses an artifact from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

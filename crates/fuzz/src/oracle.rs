//! Per-step invariant oracles.
//!
//! Each oracle watches one executor run and checks, after every step, the
//! safety properties the paper guarantees for that algorithm. They lift the
//! assertions previously duplicated across the integration tests into
//! reusable checkers shared by the fuzz driver, the corpus replays, and the
//! tests themselves.

use fa_core::{ConsensusProcess, RenamingProcess, SnapshotProcess, View};
use fa_memory::{Executor, ProcId, Process};
use fa_obs::Probe;

/// A failed oracle check: which invariant, at which executor step, and a
/// human-readable account of the offending state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated invariant (e.g. `"snapshot.comparability"`).
    pub invariant: String,
    /// Executor step count when the violation was detected (1-based: the
    /// step that exposed it).
    pub step: usize,
    /// What went wrong, with the offending values.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] step {}: {}",
            self.invariant, self.step, self.message
        )
    }
}

fn violation(invariant: &str, step: usize, message: String) -> Violation {
    Violation {
        invariant: invariant.to_string(),
        step,
        message,
    }
}

/// A per-step invariant checker over one executor run.
///
/// `check_step` is called after every successful `step_proc(p)`;
/// `check_end` once when the run stops (budget exhausted, all halted, or
/// the scheduler gave up). Oracles keep whatever history they need between
/// calls — they are cheap by design (O(n) per step) so 10k-case campaigns
/// stay fast.
pub trait Oracle<P: Process> {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Checks the invariants after processor `p` stepped.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn check_step<Pr: Probe>(&mut self, exec: &Executor<P, Pr>, p: ProcId)
        -> Result<(), Violation>;

    /// Checks end-of-run invariants (default: nothing extra).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn check_end<Pr: Probe>(&mut self, exec: &Executor<P, Pr>) -> Result<(), Violation> {
        let _ = exec;
        Ok(())
    }
}

/// Oracle for the wait-free snapshot task (Figure 3).
///
/// Checks, per step, for the stepping processor:
/// * **view monotonicity** — a processor's view never shrinks;
/// * **level legality** — the level never exceeds the register count and
///   only changes when a scan completes (Figure 3 recomputes it as
///   `min_level + 1` or resets it to 0 exactly once per completed scan).
///   Note the level is *not* monotone between resets: with group inputs
///   every register matches the shared view, so the `min + 1` rule can
///   legally lower a level (e.g. `3 -> 2`) when later scans read
///   lower-leveled registers — a subtlety this fuzzer caught in an earlier,
///   stricter version of this very invariant;
///
/// and for each newly emitted output:
/// * **self-inclusion** — the output contains the processor's own input;
/// * **comparability** — outputs are totally ordered by containment.
#[derive(Clone, Debug)]
pub struct SnapshotOracle {
    inputs: Vec<u32>,
    registers: usize,
    last_views: Vec<View<u32>>,
    last_levels: Vec<usize>,
    last_scans: Vec<usize>,
    /// Whether each processor's first output has been checked. The output
    /// views themselves stay borrowed from the executor at check time —
    /// the oracle never clones them.
    outputs_seen: Vec<bool>,
}

impl SnapshotOracle {
    /// Creates the oracle for a system with the given inputs over
    /// `registers` registers.
    #[must_use]
    pub fn new(inputs: &[u32], registers: usize) -> Self {
        SnapshotOracle {
            inputs: inputs.to_vec(),
            registers,
            last_views: inputs.iter().map(|&i| View::singleton(i)).collect(),
            last_levels: vec![0; inputs.len()],
            last_scans: vec![0; inputs.len()],
            outputs_seen: vec![false; inputs.len()],
        }
    }
}

impl Oracle<SnapshotProcess<u32>> for SnapshotOracle {
    fn name(&self) -> &'static str {
        "snapshot"
    }

    fn check_step<Pr: Probe>(
        &mut self,
        exec: &Executor<SnapshotProcess<u32>, Pr>,
        p: ProcId,
    ) -> Result<(), Violation> {
        let step = exec.total_steps();
        let proc = exec.process(p);
        let view = proc.view();
        let level = proc.level();

        if !self.last_views[p.0].is_subset(view) {
            return Err(violation(
                "snapshot.view_monotonicity",
                step,
                format!(
                    "p{} view shrank: {:?} -> {:?}",
                    p.0, self.last_views[p.0], view
                ),
            ));
        }
        let old_level = self.last_levels[p.0];
        if level > self.registers {
            return Err(violation(
                "snapshot.level_bound",
                step,
                format!(
                    "p{} level {level} exceeds register count {}",
                    p.0, self.registers
                ),
            ));
        }
        let scans = proc.scans_completed();
        if level != old_level && scans == self.last_scans[p.0] {
            return Err(violation(
                "snapshot.level_change_without_scan",
                step,
                format!(
                    "p{} level moved {old_level} -> {level} without completing a scan",
                    p.0
                ),
            ));
        }
        // `clone_from` reuses the stored view's allocation; for bitmask
        // views this is a plain word copy.
        self.last_views[p.0].clone_from(view);
        self.last_levels[p.0] = level;
        self.last_scans[p.0] = scans;

        if !self.outputs_seen[p.0] {
            if let Some(out) = exec.first_output(p) {
                if !out.contains(&self.inputs[p.0]) {
                    return Err(violation(
                        "snapshot.self_inclusion",
                        step,
                        format!(
                            "p{} output {:?} misses its own input {}",
                            p.0, out, self.inputs[p.0]
                        ),
                    ));
                }
                for q in 0..self.outputs_seen.len() {
                    if !self.outputs_seen[q] {
                        continue;
                    }
                    let other = exec
                        .first_output(ProcId(q))
                        .expect("a seen output stays in the executor log");
                    if !out.comparable(other) {
                        return Err(violation(
                            "snapshot.comparability",
                            step,
                            format!(
                                "incomparable outputs: p{} {:?} vs p{} {:?}",
                                p.0, out, q, other
                            ),
                        ));
                    }
                }
                self.outputs_seen[p.0] = true;
            }
        }
        Ok(())
    }
}

/// Oracle for adaptive renaming (Bar-Noy–Dolev names from snapshot views).
///
/// Checks each emitted name for:
/// * **positivity and the adaptive bound** — names lie in
///   `1..=M(M+1)/2` where `M` is the number of distinct groups among
///   processors that have participated (taken at least one step);
/// * **cross-group uniqueness** — processors with different inputs never
///   share a name (same-group processors may, by design).
#[derive(Clone, Debug)]
pub struct RenamingOracle {
    inputs: Vec<u32>,
    names_seen: Vec<Option<usize>>,
}

impl RenamingOracle {
    /// Creates the oracle for a system with the given group inputs.
    #[must_use]
    pub fn new(inputs: &[u32]) -> Self {
        RenamingOracle {
            inputs: inputs.to_vec(),
            names_seen: vec![None; inputs.len()],
        }
    }
}

impl Oracle<RenamingProcess<u32>> for RenamingOracle {
    fn name(&self) -> &'static str {
        "renaming"
    }

    fn check_step<Pr: Probe>(
        &mut self,
        exec: &Executor<RenamingProcess<u32>, Pr>,
        p: ProcId,
    ) -> Result<(), Violation> {
        let step = exec.total_steps();
        if self.names_seen[p.0].is_some() {
            return Ok(());
        }
        let Some(&name) = exec.first_output(p) else {
            return Ok(());
        };
        // Adaptive bound: count distinct groups among participants only.
        let participants: std::collections::BTreeSet<u32> = self
            .inputs
            .iter()
            .enumerate()
            .filter(|(q, _)| exec.participated(ProcId(*q)))
            .map(|(_, &g)| g)
            .collect();
        let m = participants.len();
        let bound = m * (m + 1) / 2;
        if name == 0 || name > bound {
            return Err(violation(
                "renaming.name_bound",
                step,
                format!(
                    "p{} took name {name} outside 1..={bound} ({m} participating groups)",
                    p.0
                ),
            ));
        }
        for (q, other) in self.names_seen.iter().enumerate() {
            if *other == Some(name) && self.inputs[q] != self.inputs[p.0] {
                return Err(violation(
                    "renaming.uniqueness",
                    step,
                    format!(
                        "name {name} taken by both p{} (group {}) and p{q} (group {})",
                        p.0, self.inputs[p.0], self.inputs[q]
                    ),
                ));
            }
        }
        self.names_seen[p.0] = Some(name);
        Ok(())
    }
}

/// Oracle for obstruction-free consensus (Figure 5).
///
/// Checks each decision for:
/// * **validity** — the decided value was proposed by someone;
/// * **agreement** — all decisions are equal.
///
/// Termination is *not* checked: the algorithm is obstruction-free, so
/// budget-bounded runs may legitimately end undecided.
#[derive(Clone, Debug)]
pub struct ConsensusOracle {
    inputs: Vec<u32>,
    decisions_seen: Vec<Option<u32>>,
}

impl ConsensusOracle {
    /// Creates the oracle for a system proposing the given inputs.
    #[must_use]
    pub fn new(inputs: &[u32]) -> Self {
        ConsensusOracle {
            inputs: inputs.to_vec(),
            decisions_seen: vec![None; inputs.len()],
        }
    }
}

impl Oracle<ConsensusProcess<u32>> for ConsensusOracle {
    fn name(&self) -> &'static str {
        "consensus"
    }

    fn check_step<Pr: Probe>(
        &mut self,
        exec: &Executor<ConsensusProcess<u32>, Pr>,
        p: ProcId,
    ) -> Result<(), Violation> {
        let step = exec.total_steps();
        if self.decisions_seen[p.0].is_some() {
            return Ok(());
        }
        let Some(&decision) = exec.first_output(p) else {
            return Ok(());
        };
        if !self.inputs.contains(&decision) {
            return Err(violation(
                "consensus.validity",
                step,
                format!(
                    "p{} decided {decision}, which nobody proposed {:?}",
                    p.0, self.inputs
                ),
            ));
        }
        for (q, other) in self.decisions_seen.iter().enumerate() {
            if let Some(other) = other {
                if *other != decision {
                    return Err(violation(
                        "consensus.agreement",
                        step,
                        format!("p{} decided {decision} but p{q} decided {other}", p.0),
                    ));
                }
            }
        }
        self.decisions_seen[p.0] = Some(decision);
        Ok(())
    }
}

//! Shared CLI wiring for the live telemetry plane.
//!
//! Every long-running experiment binary accepts the same three flags:
//!
//! * `--progress` — in-place progress line on stderr.
//! * `--telemetry-jsonl PATH` — append [`fa_obs::TelemetrySnapshot`]
//!   records (and closing [`fa_obs::SpanEvent`]s) to `PATH` as JSONL.
//! * `--telemetry-cadence-ms N` — sampling cadence (default 250).
//!
//! Telemetry is strictly out-of-band: when neither `--progress` nor
//! `--telemetry-jsonl` is given, [`TelemetrySession::from_cli`] attaches
//! nothing and the binary's stdout is byte-identical to a build without
//! this module. The progress line and emitter chatter go to stderr only.

use std::sync::Arc;
use std::time::Duration;

use fa_obs::{MetricRegistry, TelemetryConfig, TelemetryEmitter, TelemetrySummary};

use crate::{cli_flag, cli_value};

/// A CLI-governed telemetry session: a shared [`MetricRegistry`] plus the
/// background emitter sampling it. Disabled (all no-ops) unless the process
/// arguments opt in.
#[derive(Debug)]
pub struct TelemetrySession {
    registry: Option<Arc<MetricRegistry>>,
    emitter: Option<TelemetryEmitter>,
}

impl TelemetrySession {
    /// Builds a session from the process arguments. `label` names the
    /// campaign in the progress line and closing summary.
    ///
    /// # Panics
    ///
    /// Panics if `--telemetry-cadence-ms` is not a positive integer, or if
    /// the snapshot JSONL file cannot be created (surfaced at start, not at
    /// the end of a long campaign).
    #[must_use]
    pub fn from_cli(label: &str) -> Self {
        let progress = cli_flag("--progress");
        let jsonl_path = cli_value("--telemetry-jsonl").map(std::path::PathBuf::from);
        if !progress && jsonl_path.is_none() {
            return TelemetrySession {
                registry: None,
                emitter: None,
            };
        }
        let cadence_ms: u64 = match cli_value("--telemetry-cadence-ms") {
            Some(v) => v.parse().ok().filter(|&ms| ms > 0).unwrap_or_else(|| {
                panic!("--telemetry-cadence-ms wants a positive integer, got {v:?}")
            }),
            None => 250,
        };
        let registry = Arc::new(MetricRegistry::new());
        let config = TelemetryConfig {
            cadence: Duration::from_millis(cadence_ms),
            jsonl_path,
            progress,
            label: label.to_string(),
        };
        let emitter = TelemetryEmitter::start(Arc::clone(&registry), config)
            .unwrap_or_else(|e| panic!("cannot start telemetry emitter: {e}"));
        TelemetrySession {
            registry: Some(registry),
            emitter: Some(emitter),
        }
    }

    /// The shared registry to attach to sweeps/campaigns, `None` when
    /// telemetry is off.
    #[must_use]
    pub fn registry(&self) -> Option<Arc<MetricRegistry>> {
        self.registry.as_ref().map(Arc::clone)
    }

    /// Whether the session is live (any telemetry flag was given).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Stops the emitter (final snapshot + span events are flushed) and
    /// returns its summary; `None` when telemetry was off.
    pub fn finish(mut self) -> Option<TelemetrySummary> {
        let summary = self.emitter.take().map(TelemetryEmitter::stop);
        if let Some(s) = &summary {
            if let Some(err) = &s.io_error {
                eprintln!("telemetry: snapshot stream error: {err}");
            }
        }
        summary
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if let Some(emitter) = self.emitter.take() {
            let _ = emitter.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `from_cli` reads real process arguments, so tests exercise the parts
    // below it: an off session is inert and a hand-built live session
    // finishes cleanly.
    #[test]
    fn off_session_is_inert() {
        let session = TelemetrySession {
            registry: None,
            emitter: None,
        };
        assert!(!session.enabled());
        assert!(session.registry().is_none());
        assert!(session.finish().is_none());
    }

    #[test]
    fn live_session_finishes_with_a_summary() {
        let registry = Arc::new(MetricRegistry::new());
        registry.counter("mc.states_total").add(5);
        let emitter = TelemetryEmitter::start(
            Arc::clone(&registry),
            TelemetryConfig {
                cadence: Duration::from_millis(5),
                jsonl_path: None,
                progress: false,
                label: "test".into(),
            },
        )
        .unwrap();
        let session = TelemetrySession {
            registry: Some(registry),
            emitter: Some(emitter),
        };
        assert!(session.enabled());
        assert!(session.registry().is_some());
        let summary = session.finish().expect("live session has a summary");
        assert!(summary.snapshots >= 1, "final snapshot always emitted");
        assert!(summary.io_error.is_none());
    }
}

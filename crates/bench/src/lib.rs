//! # fa-bench: experiment harness
//!
//! Shared machinery for the experiment binaries (`src/bin/*`) and Criterion
//! benches (`benches/*`). Each binary regenerates one artifact of the paper;
//! the mapping is the per-experiment index in `DESIGN.md`, and observed
//! results are recorded in `EXPERIMENTS.md`.

#![deny(unsafe_code)] // one targeted allow in `signals` for the handler registration
#![warn(missing_docs)]

pub mod chaos_campaign;
pub mod obs_report;
pub mod signals;
pub mod telemetry_cli;

pub use telemetry_cli::TelemetrySession;

use fa_core::runner::{run_snapshot_random, SnapshotRunConfig};
use fa_core::{SnapRegister, View};
use fa_memory::{Executor, MemoryError, ProcId, SharedMemory, Wiring};
use fa_modelcheck::checks::{CheckConfig, TaskCheckReport};
use fa_modelcheck::CheckpointConfig;
use fa_obs::SweepEvent;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A `u32` wrapper with **no dense embedding**: it takes `ViewValue`'s
/// default `None` implementations, so `View<Opaque>` always uses the
/// `BTreeSet` fallback representation. This is exactly the pre-interning
/// value plane, kept around as the baseline ("old representation") that the
/// value-plane benches and the `bench_report` binary measure against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Opaque(pub u32);

impl fa_core::ViewValue for Opaque {}

impl std::fmt::Display for Opaque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Extracts the value of a `--name value` or `--name=value` argument.
fn arg_value<I: Iterator<Item = String>>(mut args: I, name: &str) -> Option<String> {
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(name) {
            if let Some(v) = v.strip_prefix('=') {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// The value of a `--name value` / `--name=value` process argument.
#[must_use]
pub fn cli_value(name: &str) -> Option<String> {
    arg_value(std::env::args().skip(1), name)
}

/// Whether a bare `--name` flag is present in the process arguments.
#[must_use]
pub fn cli_flag(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// The sweep worker count requested via `--jobs N` (`None` when absent:
/// the sweep decides, defaulting to available parallelism).
///
/// # Panics
///
/// Panics with a usage message if the value is not a positive integer.
#[must_use]
pub fn cli_jobs() -> Option<usize> {
    cli_value("--jobs").map(|v| {
        v.parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .unwrap_or_else(|| panic!("--jobs wants a positive integer, got {v:?}"))
    })
}

/// The sweep executor requested via `--strategy auto|serial|pool|intra[:N]`
/// (`None` when absent: [`fa_modelcheck::StrategyKind::Auto`]). `intra`
/// parallelizes *within* each combo's BFS with N shared-frontier workers
/// (N omitted or 0: the detected core count), splitting the `--jobs`
/// budget between combo-level and intra-combo threads.
///
/// # Panics
///
/// Panics with a usage message if the value names no known strategy.
#[must_use]
pub fn cli_strategy() -> Option<fa_modelcheck::StrategyKind> {
    cli_value("--strategy").map(|v| v.parse().unwrap_or_else(|e| panic!("{e}")))
}

/// Parses a human-readable byte size: a plain integer (`65536`), a binary
/// suffix (`64KiB`, `2GiB` — powers of 1024), a decimal suffix (`64KB`,
/// `2GB` — powers of 1000), or a bare letter (`64K`, `2G` — binary, the
/// common CLI shorthand). A trailing `B`/`b` and surrounding whitespace are
/// accepted; matching is case-insensitive.
///
/// # Errors
///
/// Returns a usage message naming the rejected input on empty strings,
/// unknown suffixes, non-numeric magnitudes, and overflow.
pub fn parse_size(text: &str) -> Result<u64, String> {
    let s = text.trim();
    if s.is_empty() {
        return Err("empty size".to_string());
    }
    let lower = s.to_ascii_lowercase();
    // Suffix table, longest first so `kib` wins over `k`.
    const SUFFIXES: &[(&str, u64)] = &[
        ("kib", 1 << 10),
        ("mib", 1 << 20),
        ("gib", 1 << 30),
        ("tib", 1 << 40),
        ("kb", 1_000),
        ("mb", 1_000_000),
        ("gb", 1_000_000_000),
        ("tb", 1_000_000_000_000),
        ("k", 1 << 10),
        ("m", 1 << 20),
        ("g", 1 << 30),
        ("t", 1 << 40),
        ("b", 1),
    ];
    let (digits, unit) = SUFFIXES
        .iter()
        .find_map(|(suffix, unit)| lower.strip_suffix(suffix).map(|d| (d, *unit)))
        .unwrap_or((lower.as_str(), 1));
    let digits = digits.trim_end();
    if digits.is_empty() {
        return Err(format!("size {text:?} has no magnitude"));
    }
    let magnitude: u64 = digits
        .parse()
        .map_err(|_| format!("size {text:?} is not a number with an optional KiB/MiB/GiB/TiB (or KB/MB/GB/TB) suffix"))?;
    magnitude
        .checked_mul(unit)
        .ok_or_else(|| format!("size {text:?} overflows u64 bytes"))
}

/// The value of a `--name SIZE` argument parsed via [`parse_size`]
/// (`None` when absent).
///
/// # Panics
///
/// Panics with a usage message if the value does not parse as a size.
#[must_use]
pub fn cli_size(name: &str) -> Option<u64> {
    cli_value(name).map(|v| parse_size(&v).unwrap_or_else(|e| panic!("{name}: {e}")))
}

/// The visited-set memory budget requested via `--visited-budget SIZE`
/// (`None` when absent: everything stays in memory). Sizes are
/// human-readable: `67108864`, `64MiB`, `2GB` (see [`parse_size`]).
///
/// # Panics
///
/// Panics with a usage message if the value does not parse as a size.
#[must_use]
pub fn cli_visited_budget() -> Option<usize> {
    cli_size("--visited-budget").map(|v| usize::try_from(v).unwrap_or(usize::MAX))
}

/// The checkpoint configuration requested via `--checkpoint-dir DIR`
/// (`None` when absent: no checkpointing). `--checkpoint-every SIZE` sets
/// the journal fsync epoch (human-readable sizes, default 64KiB) and
/// `--resume` resumes from an existing journal in the directory.
///
/// # Panics
///
/// Panics with a usage message if `--checkpoint-every` does not parse.
#[must_use]
pub fn cli_checkpoint() -> Option<CheckpointConfig> {
    let dir = cli_value("--checkpoint-dir")?;
    let mut cp = CheckpointConfig::new(dir);
    if let Some(bytes) = cli_size("--checkpoint-every") {
        cp = cp.with_sync_every(bytes);
    }
    if cli_flag("--resume") {
        cp = cp.with_resume();
    }
    Some(cp)
}

/// The RSS hard limit requested via `--memory-limit SIZE` (`None` when
/// absent: no watchdog). At 80% of the limit the sweep's visited tier is
/// forced to spill; at the limit the sweep aborts gracefully to
/// `complete: false` instead of dying to the OOM killer.
///
/// # Panics
///
/// Panics with a usage message if the value does not parse as a size.
#[must_use]
pub fn cli_memory_limit() -> Option<u64> {
    cli_size("--memory-limit")
}

/// A model-check [`CheckConfig`] honoring the `--jobs`, `--strategy`,
/// `--quotient`, `--visited-budget`, `--checkpoint-dir`,
/// `--checkpoint-every`, `--resume`, and `--memory-limit` flags.
#[must_use]
pub fn check_config_from_cli() -> CheckConfig {
    let mut config = match cli_jobs() {
        Some(j) => CheckConfig::default().with_jobs(j),
        None => CheckConfig::default(),
    };
    if let Some(kind) = cli_strategy() {
        config = config.with_strategy(kind);
    }
    if cli_flag("--quotient") {
        config = config.with_quotient();
    }
    if let Some(bytes) = cli_visited_budget() {
        config = config.with_visited_budget(bytes);
    }
    if let Some(cp) = cli_checkpoint() {
        config = config.with_checkpoint(cp);
    }
    if let Some(limit) = cli_memory_limit() {
        config = config.with_memory_limit(limit);
    }
    config
}

/// Exit code for a clean run: complete, no violation.
pub const EXIT_CLEAN: i32 = 0;
/// Exit code for a run that finished without a violation but explored less
/// than everything (state/depth/memory budget, abort signal) — resumable
/// when checkpointed. Distinct from 1, which the panic runtime owns.
pub const EXIT_INCOMPLETE: i32 = 2;
/// Exit code for a run whose report carries a violation.
pub const EXIT_VIOLATION: i32 = 3;

/// Maps a sweep report to the process exit code contract above, so CI and
/// the soak/crash harnesses can tell "clean", "incomplete-by-budget", and
/// "violation found" apart.
#[must_use]
pub fn report_exit_code(report: &TaskCheckReport) -> i32 {
    if report.violation.is_some() {
        EXIT_VIOLATION
    } else if report.complete {
        EXIT_CLEAN
    } else {
        EXIT_INCOMPLETE
    }
}

/// One-line human rendering of sweep telemetry, for experiment binaries.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn sweep_summary(t: &SweepEvent) -> String {
    format!(
        "[{}] jobs={} combos={}/{} states={} peak_combo_states={} elapsed={:.2}s ({:.1} combos/s, {:.0} states/s)",
        t.check,
        t.jobs,
        t.combos_attempted,
        t.combos_total,
        t.states,
        t.peak_combo_states,
        t.elapsed_ns as f64 / 1e9,
        t.combos_per_sec(),
        t.states_per_sec(),
    )
}

/// Renders a markdown table: a header row, a separator, and value rows with
/// every column padded to its widest cell.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let mut out = String::new();
    out.push_str(&fmt_row(headers.iter().map(|s| (*s).to_string()).collect()));
    out.push('\n');
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(sep));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone()));
        out.push('\n');
    }
    out
}

/// Prints a markdown table (see [`format_table`]).
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(headers, rows));
}

/// Summary statistics over a sample of per-run step counts.
#[derive(Clone, Debug, PartialEq)]
pub struct StepStats {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean total steps.
    pub mean: f64,
    /// Minimum total steps.
    pub min: usize,
    /// Maximum total steps.
    pub max: usize,
}

impl StepStats {
    /// Aggregates a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    #[must_use]
    pub fn from_sample(sample: &[usize]) -> Self {
        assert!(!sample.is_empty(), "empty sample");
        let sum: usize = sample.iter().sum();
        StepStats {
            runs: sample.len(),
            mean: sum as f64 / sample.len() as f64,
            min: *sample.iter().min().expect("nonempty"),
            max: *sample.iter().max().expect("nonempty"),
        }
    }
}

/// Runs the fully-anonymous snapshot for `n` distinct-input processors under
/// `seeds.len()` random schedules and returns total-step statistics (E4).
///
/// # Errors
///
/// Propagates runner errors.
pub fn snapshot_step_stats(
    n: usize,
    seeds: std::ops::Range<u64>,
) -> Result<StepStats, MemoryError> {
    let mut sample = Vec::new();
    for seed in seeds {
        let cfg = SnapshotRunConfig::new((0..n as u32).collect()).with_seed(seed);
        let res = run_snapshot_random(&cfg)?;
        sample.push(res.total_steps);
    }
    Ok(StepStats::from_sample(&sample))
}

/// Steps to completion for the double-collect baseline on anonymous memory
/// (may fail to terminate; reports `None` for such runs).
///
/// # Errors
///
/// Propagates executor errors.
pub fn double_collect_steps(
    n: usize,
    seed: u64,
    budget: usize,
) -> Result<Option<usize>, MemoryError> {
    use fa_baselines::DoubleCollectProcess;
    let procs: Vec<DoubleCollectProcess<u32>> = (0..n)
        .map(|i| DoubleCollectProcess::new(i as u32, n))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57a8_1e55_0000_0000);
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let memory = SharedMemory::new(n, View::new(), wirings)?;
    let mut exec = Executor::new(procs, memory)?;
    let outcome = exec.run(
        fa_memory::RandomScheduler::new(ChaCha8Rng::seed_from_u64(seed)),
        budget,
    )?;
    Ok(outcome.all_halted.then(|| exec.total_steps()))
}

/// Steps to completion for the SWMR (non-anonymous) baseline.
///
/// # Errors
///
/// Propagates executor errors.
pub fn swmr_steps(n: usize, seed: u64, budget: usize) -> Result<Option<usize>, MemoryError> {
    use fa_baselines::{SwmrRegister, SwmrSnapshotProcess};
    let procs: Vec<SwmrSnapshotProcess<u32>> = (0..n)
        .map(|i| SwmrSnapshotProcess::new(i, i as u32, n))
        .collect();
    let mut memory = SharedMemory::named(n, n, SwmrRegister::default())?;
    memory.set_owners((0..n).map(ProcId).collect())?;
    let mut exec = Executor::new(procs, memory)?;
    let outcome = exec.run(
        fa_memory::RandomScheduler::new(ChaCha8Rng::seed_from_u64(seed)),
        budget,
    )?;
    Ok(outcome.all_halted.then(|| exec.total_steps()))
}

/// Steps for the fully-anonymous snapshot (ours), `None` on budget
/// exhaustion.
///
/// # Errors
///
/// Propagates executor errors other than budget exhaustion.
pub fn anonymous_snapshot_steps(
    n: usize,
    seed: u64,
    budget: usize,
) -> Result<Option<usize>, MemoryError> {
    use fa_core::SnapshotProcess;
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n).map(|i| SnapshotProcess::new(i as u32, n)).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57a8_1e55_0000_0000);
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings)?;
    let mut exec = Executor::new(procs, memory)?;
    let outcome = exec.run(
        fa_memory::RandomScheduler::new(ChaCha8Rng::seed_from_u64(seed)),
        budget,
    )?;
    Ok(outcome.all_halted.then(|| exec.total_steps()))
}

/// A seeded RNG for experiment code that needs auxiliary randomness.
#[must_use]
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Random distinct-input vector of length `n`.
#[must_use]
pub fn distinct_inputs(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// Random group inputs: `n` processors spread over up to `g` groups.
#[must_use]
pub fn group_inputs(n: usize, g: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..g) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_stats_aggregates() {
        let s = StepStats::from_sample(&[10, 20, 30]);
        assert_eq!(s.runs, 3);
        assert!((s.mean - 20.0).abs() < f64::EPSILON);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn step_stats_rejects_empty() {
        let _ = StepStats::from_sample(&[]);
    }

    #[test]
    fn snapshot_stats_small() {
        let stats = snapshot_step_stats(3, 0..5).unwrap();
        assert_eq!(stats.runs, 5);
        assert!(stats.min > 0);
        assert!(stats.max >= stats.min);
    }

    #[test]
    fn baselines_terminate_on_small_systems() {
        assert!(swmr_steps(3, 1, 1_000_000).unwrap().is_some());
        assert!(anonymous_snapshot_steps(3, 1, 10_000_000)
            .unwrap()
            .is_some());
        // Double collect usually terminates under random schedules.
        let _ = double_collect_steps(3, 1, 1_000_000).unwrap();
    }

    #[test]
    fn table_printer_is_well_formed() {
        // Smoke: must not panic on aligned input.
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn table_columns_align_to_widest_cell() {
        let s = format_table(
            &["a", "metric"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4, "header, separator, two rows");
        // Every line is padded to the same width and pipe-delimited.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines
            .iter()
            .all(|l| l.starts_with("| ") && l.ends_with(" |")));
        // Pipes line up column-for-column across all rows.
        let pipe_positions = |l: &str| -> Vec<usize> {
            l.char_indices()
                .filter(|(_, c)| *c == '|')
                .map(|(i, _)| i)
                .collect()
        };
        assert!(lines
            .iter()
            .all(|l| pipe_positions(l) == pipe_positions(lines[0])));
        // Cells pad to the widest entry of their column ("333" and "metric").
        assert_eq!(lines[0], "| a   | metric |");
        assert_eq!(lines[2], "| 1   | 2      |");
        assert_eq!(lines[3], "| 333 | 4      |");
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn table_printer_rejects_ragged() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn table_formatter_rejects_ragged() {
        let _ = format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn arg_value_accepts_both_spellings() {
        assert_eq!(
            arg_value(args(&["--jobs", "4"]), "--jobs"),
            Some("4".into())
        );
        assert_eq!(arg_value(args(&["--jobs=2"]), "--jobs"), Some("2".into()));
        assert_eq!(
            arg_value(args(&["--smoke", "--jobs", "8"]), "--jobs"),
            Some("8".into())
        );
        assert_eq!(arg_value(args(&["--smoke"]), "--jobs"), None);
        // `--jobsx 1` must not match `--jobs`.
        assert_eq!(arg_value(args(&["--jobsx", "1"]), "--jobs"), None);
    }

    #[test]
    fn parse_size_accepts_plain_bytes_and_suffixes() {
        assert_eq!(parse_size("0"), Ok(0));
        assert_eq!(parse_size("65536"), Ok(65_536));
        assert_eq!(parse_size("64KiB"), Ok(64 * 1024));
        assert_eq!(parse_size("64kib"), Ok(64 * 1024));
        assert_eq!(parse_size("2GiB"), Ok(2 << 30));
        assert_eq!(parse_size("1TiB"), Ok(1 << 40));
        assert_eq!(parse_size("3MiB"), Ok(3 << 20));
        // Decimal suffixes are powers of 1000.
        assert_eq!(parse_size("64KB"), Ok(64_000));
        assert_eq!(parse_size("2gb"), Ok(2_000_000_000));
        assert_eq!(parse_size("5TB"), Ok(5_000_000_000_000));
        // Bare letters are the binary CLI shorthand.
        assert_eq!(parse_size("64K"), Ok(64 * 1024));
        assert_eq!(parse_size("2g"), Ok(2 << 30));
        assert_eq!(parse_size("1m"), Ok(1 << 20));
        // Trailing B and whitespace are tolerated.
        assert_eq!(parse_size("128B"), Ok(128));
        assert_eq!(parse_size("  64 KiB  "), Ok(64 * 1024));
    }

    #[test]
    fn parse_size_rejects_garbage_with_usage_messages() {
        assert!(parse_size("").unwrap_err().contains("empty"));
        assert!(parse_size("KiB").unwrap_err().contains("no magnitude"));
        assert!(parse_size("ten").unwrap_err().contains("not a number"));
        assert!(parse_size("64XiB").unwrap_err().contains("not a number"));
        assert!(parse_size("-3KiB").unwrap_err().contains("not a number"));
        assert!(parse_size("1.5GiB").unwrap_err().contains("not a number"));
        assert!(parse_size("999999999999TiB")
            .unwrap_err()
            .contains("overflows"));
    }

    #[test]
    fn report_exit_codes_distinguish_the_three_outcomes() {
        let clean = TaskCheckReport {
            combos: 2,
            total_combos: 2,
            total_states: 10,
            complete: true,
            violation: None,
            quotient: None,
        };
        assert_eq!(report_exit_code(&clean), EXIT_CLEAN);
        let incomplete = TaskCheckReport {
            complete: false,
            ..clean.clone()
        };
        assert_eq!(report_exit_code(&incomplete), EXIT_INCOMPLETE);
        let violated = TaskCheckReport {
            violation: Some("boom".into()),
            ..clean
        };
        assert_eq!(report_exit_code(&violated), EXIT_VIOLATION);
    }

    #[test]
    fn sweep_summary_mentions_the_key_numbers() {
        let s = sweep_summary(&SweepEvent {
            check: "snapshot_task".into(),
            jobs: 4,
            combos_attempted: 25,
            combos_total: 36,
            states: 1234,
            peak_combo_states: 99,
            per_combo_states: vec![],
            elapsed_ns: 500_000_000,
        });
        assert!(s.contains("[snapshot_task]"));
        assert!(s.contains("jobs=4"));
        assert!(s.contains("combos=25/36"));
        assert!(s.contains("states=1234"));
        assert!(s.contains("peak_combo_states=99"));
    }
}

/// Renders a trace as an ASCII timeline: one lane per processor, one row per
/// step, with a compact action summary in the acting processor's lane. Handy
/// for inspecting counterexample schedules and demo executions.
#[must_use]
pub fn render_timeline<V: std::fmt::Debug, O: std::fmt::Debug>(
    trace: &fa_memory::Trace<V, O>,
    n: usize,
) -> String {
    use fa_memory::EventKind;
    let lane_width = 16usize;
    let mut out = String::new();
    // Header.
    out.push_str("time ");
    for i in 0..n {
        out.push_str(&format!("| {:<w$}", format!("p{i}"), w = lane_width));
    }
    out.push('\n');
    for e in trace.events() {
        out.push_str(&format!("{:>4} ", e.time));
        for i in 0..n {
            let cell = if e.proc.index() == i {
                match &e.kind {
                    EventKind::Read { global, value, .. } => {
                        format!("R {global}={value:?}")
                    }
                    EventKind::Write { global, value, .. } => {
                        format!("W {global}:={value:?}")
                    }
                    EventKind::Output(o) => format!("OUT {o:?}"),
                    EventKind::Halt => "HALT".to_string(),
                }
            } else {
                String::new()
            };
            let mut cell = cell;
            cell.truncate(lane_width);
            out.push_str(&format!("| {cell:<w$}", w = lane_width));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use fa_memory::{Action, Process, StepInput};
    use fa_memory::{Executor, SharedMemory, Wiring};

    #[derive(Clone)]
    struct Tiny(bool);
    impl Process for Tiny {
        type Value = u8;
        type Output = u8;
        fn step(&mut self, _i: StepInput<u8>) -> Action<u8, u8> {
            if self.0 {
                Action::Halt
            } else {
                self.0 = true;
                Action::write(0, 9)
            }
        }
    }

    #[test]
    fn timeline_contains_lanes_and_actions() {
        let memory = SharedMemory::new(1, 0u8, vec![Wiring::identity(1); 2]).unwrap();
        let mut exec = Executor::new(vec![Tiny(false), Tiny(false)], memory).unwrap();
        exec.record_trace(true);
        exec.run_round_robin(100).unwrap();
        let s = render_timeline(exec.trace().unwrap(), 2);
        assert!(s.contains("p0"));
        assert!(s.contains("p1"));
        assert!(s.contains("W r0:=9"));
        assert!(s.contains("HALT"));
        // One row per event plus the header.
        assert_eq!(s.lines().count(), exec.trace().unwrap().len() + 1);
    }
}

//! Graceful-shutdown signal handling for long-running sweep binaries.
//!
//! [`install_abort_handler`] registers SIGINT/SIGTERM handlers that do one
//! async-signal-safe thing: raise a shared [`AtomicBool`]. The sweep polls
//! that flag through [`CheckConfig::abort`](fa_modelcheck::CheckConfig),
//! finishes the current journal records, fsyncs a final checkpoint, and
//! exits with the incomplete exit code — so an interrupted checkpointed run
//! is always resumable with `--resume`.
//!
//! No `libc` crate: the two constants and the `signal(2)` prototype are
//! declared directly (they are stable POSIX ABI on every target we build),
//! keeping the workspace dependency-free. On non-unix targets the installer
//! degrades to returning a flag nobody raises.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, OnceLock};

/// The flag shared with every registered handler. `signal(2)` handlers get
/// no closure context, so the target flag lives in a process-wide static.
static ABORT_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::ABORT_FLAG;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. Takes and returns a handler address
        /// (`SIG_ERR` is `usize::MAX` on error, which we ignore: failing to
        /// install a handler only costs graceful shutdown, never safety).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The handler itself: raise the flag and return. Everything here is
    /// async-signal-safe (one relaxed atomic store, no allocation, no
    /// locks); the sweep notices at its next stop-probe poll.
    extern "C" fn raise_abort(_signum: i32) {
        if let Some(flag) = ABORT_FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }

    pub(super) fn install() {
        let handler = raise_abort as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Arms an [`AtomicBool`] that future [`install`]ed handlers raise —
    /// used by tests to exercise the handler path without a real signal.
    #[cfg(test)]
    pub(super) fn fire_for_test() {
        raise_abort(SIGINT);
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs SIGINT/SIGTERM handlers (first call only; the registration is
/// process-wide) and returns the abort flag they raise. Hand the flag to
/// [`CheckConfig::with_abort`](fa_modelcheck::CheckConfig::with_abort) and
/// treat an incomplete report as "interrupted, resume me".
///
/// Subsequent calls return the same flag without re-registering.
#[must_use]
pub fn install_abort_handler() -> Arc<AtomicBool> {
    let mut first = false;
    let flag = ABORT_FLAG.get_or_init(|| {
        first = true;
        Arc::new(AtomicBool::new(false))
    });
    if first {
        imp::install();
    }
    Arc::clone(flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn install_returns_one_shared_flag() {
        let a = install_abort_handler();
        let b = install_abort_handler();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.load(Ordering::Relaxed));
    }

    #[cfg(unix)]
    #[test]
    fn handler_raises_the_installed_flag() {
        let flag = install_abort_handler();
        flag.store(false, Ordering::Relaxed);
        imp::fire_for_test();
        assert!(flag.load(Ordering::Relaxed));
        flag.store(false, Ordering::Relaxed); // leave no residue for other tests
    }
}

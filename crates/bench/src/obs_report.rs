//! Unified observability report (E17): runs a seeded workload matrix —
//! {snapshot, renaming, consensus, double-collect baseline} ×
//! {identity, random wirings} × seeds — through the `fa-obs` probe layer and
//! emits `results/obs_report.json` plus a markdown summary.
//!
//! The per-run [`RunMetrics`] capture exactly the quantities Section 2 of the
//! paper reasons about: `peak_covering` is the largest set of processors the
//! schedule ever held simultaneously poised to write (a covering in the
//! paper's sense), and `resets` counts level falls to 0 — the snapshot
//! algorithm detecting that covered writes destroyed its progress.

use std::fs;
use std::io::Write as _;
use std::time::Duration;

use crate::print_table;
use fa_baselines::DoubleCollectProcess;
use fa_core::metrics::snapshot_trajectories_probed;
use fa_core::runner::{run_consensus_probed, run_renaming_probed, WiringMode};
use fa_core::{BackoffArbiter, ConsensusProcess, SnapRegister, View};
use fa_memory::chaos::{run_chaos, ChaosConfig, FaultPlan};
use fa_memory::{Executor, RandomScheduler, SharedMemory, Wiring};
use fa_modelcheck::checks::{
    check_renaming_with, check_snapshot_task_coarse_with, check_snapshot_task_with, CheckConfig,
};
use fa_obs::BackoffEvent;
use fa_obs::{JsonlSink, Probe as _, RunMetrics, SweepEvent};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use serde_json::{Map, Value};

const SEEDS: std::ops::Range<u64> = 0..5;
const SIZES: [usize; 2] = [4, 6];
const BUDGET: usize = 10_000_000;

/// One cell of the workload matrix.
struct Cell {
    algorithm: &'static str,
    wiring: &'static str,
    n: usize,
    seed: u64,
    completed: bool,
    metrics: RunMetrics,
}

fn wiring_modes() -> [(&'static str, WiringMode); 2] {
    [
        ("identity", WiringMode::Identity),
        ("random", WiringMode::Random),
    ]
}

fn snapshot_cell(n: usize, mode: &WiringMode, name: &'static str, seed: u64) -> Cell {
    let inputs: Vec<u32> = (0..n as u32).collect();
    let sched = RandomScheduler::new(ChaCha8Rng::seed_from_u64(seed));
    let (t, metrics) =
        snapshot_trajectories_probed(&inputs, mode, seed, sched, BUDGET, RunMetrics::new())
            .expect("snapshot run");
    Cell {
        algorithm: "snapshot",
        wiring: name,
        n,
        seed,
        completed: t.completed,
        metrics,
    }
}

fn renaming_cell(n: usize, mode: &WiringMode, name: &'static str, seed: u64) -> Cell {
    let inputs: Vec<u32> = (0..n as u32).collect();
    let (_names, metrics) =
        run_renaming_probed(&inputs, seed, mode, BUDGET, RunMetrics::new()).expect("renaming run");
    Cell {
        algorithm: "renaming",
        wiring: name,
        n,
        seed,
        completed: true,
        metrics,
    }
}

fn consensus_cell(n: usize, mode: &WiringMode, name: &'static str, seed: u64) -> Cell {
    let inputs: Vec<u32> = (0..n as u32).collect();
    let (res, metrics) =
        run_consensus_probed(&inputs, seed, mode, 200_000, BUDGET, RunMetrics::new())
            .expect("consensus run");
    Cell {
        algorithm: "consensus",
        wiring: name,
        n,
        seed,
        completed: res.all_decided,
        metrics,
    }
}

/// The double-collect baseline has no dedicated runner; build the probed
/// executor directly. It may livelock under contention, which is itself a
/// result worth recording (`completed: false`).
fn double_collect_cell(n: usize, mode: &WiringMode, name: &'static str, seed: u64) -> Cell {
    let procs: Vec<DoubleCollectProcess<u32>> = (0..n)
        .map(|i| DoubleCollectProcess::new(i as u32, n))
        .collect();
    let wirings: Vec<Wiring> = match mode {
        WiringMode::Identity => vec![Wiring::identity(n); n],
        _ => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57a8_1e55_0000_0000);
            (0..n).map(|_| Wiring::random(n, &mut rng)).collect()
        }
    };
    let memory = SharedMemory::new(n, View::new(), wirings).expect("memory");
    let mut exec = Executor::with_probe(procs, memory, RunMetrics::new()).expect("executor");
    let outcome = exec
        .run(
            RandomScheduler::new(ChaCha8Rng::seed_from_u64(seed)),
            1_000_000,
        )
        .expect("double-collect run");
    Cell {
        algorithm: "double_collect",
        wiring: name,
        n,
        seed,
        completed: outcome.all_halted,
        metrics: exec.into_probe(),
    }
}

fn cell_json(c: &Cell) -> Value {
    let mut obj = Map::new();
    obj.insert("algorithm".into(), Value::String(c.algorithm.into()));
    obj.insert("wiring".into(), Value::String(c.wiring.into()));
    obj.insert("n".into(), (c.n as u64).to_value());
    obj.insert("seed".into(), c.seed.to_value());
    obj.insert("completed".into(), Value::Bool(c.completed));
    obj.insert("metrics".into(), c.metrics.to_value());
    Value::Object(obj)
}

/// Runs the small model-check sweeps whose telemetry the report records:
/// the 2-processor fine-grain snapshot and renaming sweeps and the
/// 3-processor coarse-scan snapshot sweep, all exhaustive.
fn sweep_cells(jobs: Option<usize>) -> Vec<SweepEvent> {
    let config = match jobs {
        Some(j) => CheckConfig::default().with_jobs(j),
        None => CheckConfig::default(),
    };
    let snapshot = check_snapshot_task_with(&[1, 2], 500_000, &config).expect("snapshot sweep");
    let renaming = check_renaming_with(&[1, 2], 500_000, &config).expect("renaming sweep");
    let coarse =
        check_snapshot_task_coarse_with(&[1, 2, 3], 400_000, &config).expect("coarse sweep");
    for outcome in [&snapshot, &renaming, &coarse] {
        assert!(
            outcome.report.violation.is_none(),
            "{:?}",
            outcome.report.violation
        );
    }
    vec![snapshot.telemetry, renaming.telemetry, coarse.telemetry]
}

/// One consensus-under-chaos run with backoff arbiters: per-processor
/// attempt/backoff telemetry plus whether every processor decided.
struct BackoffCell {
    seed: u64,
    all_decided: bool,
    events: Vec<BackoffEvent>,
}

/// Threaded consensus (n = 4) under an injected stall storm with a
/// [`BackoffArbiter`] per processor — the contention-management telemetry
/// the chaos campaign (E20) studies in depth, summarized here so the
/// unified report shows attempt/backoff counters next to the deterministic
/// workloads.
fn backoff_chaos_cell(seed: u64) -> BackoffCell {
    let n = 4;
    let procs: Vec<ConsensusProcess<u32>> = (0..n as u32)
        .map(|i| {
            ConsensusProcess::new(10 + i, n).with_backoff(BackoffArbiter::new(
                seed.wrapping_mul(131).wrapping_add(u64::from(i)),
                Duration::from_micros(20),
                Duration::from_millis(5),
            ))
        })
        .collect();
    let stats: Vec<_> = procs
        .iter()
        .map(|p| p.backoff_stats().expect("arbiter attached"))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbac0_ff00);
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let plan = FaultPlan::new(n)
        .stall_every(1, 3, Duration::from_micros(200))
        .stall_every(2, 4, Duration::from_micros(150));
    let config = ChaosConfig::new(BUDGET).with_deadline(Duration::from_secs(120));
    let report = run_chaos(procs, wirings, n, SnapRegister::default(), &plan, &config)
        .expect("valid chaos config");
    BackoffCell {
        seed,
        all_decided: report.all_completed(),
        events: stats
            .iter()
            .enumerate()
            .map(|(i, s)| s.event_for(i))
            .collect(),
    }
}

/// One perf-trajectory row sourced from a committed `results/` artifact.
struct Trend {
    experiment: &'static str,
    source: &'static str,
    metric: &'static str,
    /// Rendered value, `None` when the artifact is absent or its shape is
    /// not the expected one (the trend table degrades, never panics).
    value: Option<String>,
}

fn read_json_file(path: &str) -> Option<Value> {
    serde_json::from_str(&fs::read_to_string(path).ok()?).ok()
}

/// States/sec of the heaviest sweep in a `SweepEvent` array (by
/// `combos_total`), `None` when the array is empty or malformed.
fn heaviest_sweep_rate(sweeps: &[Value]) -> Option<String> {
    let best = sweeps
        .iter()
        .max_by_key(|s| s.get("combos_total").and_then(Value::as_u64).unwrap_or(0))?;
    let states = best.get("states").and_then(Value::as_u64)?;
    let elapsed = best.get("elapsed_ns").and_then(Value::as_u64)?;
    #[allow(clippy::cast_precision_loss)]
    Some(format!(
        "{:.0} states/s ({} states)",
        states as f64 / (elapsed as f64 / 1e9).max(1e-9),
        states
    ))
}

/// Reads every committed perf artifact (E17–E24) defensively and returns
/// the cross-experiment trend rows for the report's `trends` section.
#[allow(clippy::cast_precision_loss)]
fn trend_rows() -> Vec<Trend> {
    let mut rows = Vec::new();

    // E17: this report's own previous committed run.
    rows.push(Trend {
        experiment: "E17",
        source: "results/obs_report.json",
        metric: "heaviest sweep",
        value: read_json_file("results/obs_report.json")
            .and_then(|v| v.get("sweeps").and_then(Value::as_array).cloned())
            .and_then(|s| heaviest_sweep_rate(&s)),
    });

    // E18: the 4-processor sweep telemetry stream (externally tagged
    // `{"Sweep": {...}}` lines).
    rows.push(Trend {
        experiment: "E18",
        source: "results/check_snapshot_telemetry.jsonl",
        metric: "heaviest sweep",
        value: fs::read_to_string("results/check_snapshot_telemetry.jsonl")
            .ok()
            .map(|text| {
                text.lines()
                    .filter_map(|l| serde_json::from_str::<Value>(l).ok())
                    .filter_map(|v| v.get("Sweep").cloned())
                    .collect::<Vec<_>>()
            })
            .and_then(|s| heaviest_sweep_rate(&s)),
    });

    // E19: fuzz campaign throughput.
    rows.push(Trend {
        experiment: "E19",
        source: "results/fuzz_report.json",
        metric: "fuzz throughput",
        value: read_json_file("results/fuzz_report.json").and_then(|v| {
            let steps = v.get("total_steps").and_then(Value::as_u64)?;
            let cases = v.get("cases").and_then(Value::as_u64)?;
            let elapsed = v.get("elapsed_ns").and_then(Value::as_u64)?;
            Some(format!(
                "{:.0} steps/s ({cases} cases)",
                steps as f64 / (elapsed as f64 / 1e9).max(1e-9)
            ))
        }),
    });

    // E20: chaos campaign scenario verdicts.
    rows.push(Trend {
        experiment: "E20",
        source: "results/chaos_report.json",
        metric: "scenarios passed",
        value: read_json_file("results/chaos_report.json")
            .and_then(|v| v.get("scenarios").and_then(Value::as_array).cloned())
            .map(|scenarios| {
                let passed = scenarios
                    .iter()
                    .filter(|s| s.get("checks_passed").and_then(Value::as_bool) == Some(true))
                    .count();
                format!("{passed}/{}", scenarios.len())
            }),
    });

    // E21: value-plane sweep throughput and speedup.
    rows.push(Trend {
        experiment: "E21",
        source: "results/bench_report.json",
        metric: "value-plane sweep",
        value: read_json_file("results/bench_report.json").and_then(|v| {
            let sweep = v.get("sweep")?;
            let rate = sweep
                .get("bitmask_states_per_sec")
                .and_then(Value::as_f64)?;
            let speedup = sweep.get("speedup").and_then(Value::as_f64)?;
            Some(format!("{rate:.0} states/s ({speedup:.2}x vs fallback)"))
        }),
    });

    // E22: live-telemetry overhead (root perf-trajectory document).
    rows.push(Trend {
        experiment: "E22",
        source: "BENCH_value_plane.json",
        metric: "telemetry overhead",
        value: read_json_file("BENCH_value_plane.json").and_then(|v| {
            let pct = v
                .get("e22_telemetry_overhead_pct")
                .and_then(Value::as_f64)?;
            let rate = v.get("e22_states_per_sec_live").and_then(Value::as_f64)?;
            Some(format!("{pct:.2}% at {rate:.0} states/s live"))
        }),
    });

    // E24: symmetry-quotient compression of the fully-symmetric sweep.
    rows.push(Trend {
        experiment: "E24",
        source: "results/bench_report.json",
        metric: "quotient orbit factor",
        value: read_json_file("results/bench_report.json").and_then(|v| {
            let quot = v.get("quotient")?;
            let factor = quot.get("orbit_factor").and_then(Value::as_f64)?;
            let canonical = quot.get("canonical_states").and_then(Value::as_u64)?;
            let combos = quot.get("combos_explored").and_then(Value::as_u64)?;
            Some(format!(
                "{factor:.2}x ({canonical} canonical states, {combos} combo classes)"
            ))
        }),
    });

    rows
}

fn trend_json(t: &Trend) -> Value {
    let mut obj = Map::new();
    obj.insert("experiment".into(), Value::String(t.experiment.into()));
    obj.insert("source".into(), Value::String(t.source.into()));
    obj.insert("metric".into(), Value::String(t.metric.into()));
    obj.insert(
        "value".into(),
        t.value.clone().map_or(Value::Null, Value::String),
    );
    Value::Object(obj)
}

fn backoff_cell_json(c: &BackoffCell) -> Value {
    let mut obj = Map::new();
    obj.insert("seed".into(), c.seed.to_value());
    obj.insert("all_decided".into(), Value::Bool(c.all_decided));
    obj.insert(
        "backoff_events".into(),
        Value::Array(c.events.iter().map(serde_json::to_value).collect()),
    );
    Value::Object(obj)
}

/// Runs the workload matrix plus the model-check sweeps, writes
/// `results/obs_report.json` and `results/obs_sweeps.jsonl`, and prints the
/// markdown summary. `jobs` sets the sweep worker count (`None` = available
/// parallelism); it changes only the telemetry, never the verdicts.
///
/// # Panics
///
/// Panics if a run fails or the report cannot be written.
pub fn run_report(jobs: Option<usize>) {
    let mut cells: Vec<Cell> = Vec::new();
    for n in SIZES {
        for (name, mode) in wiring_modes() {
            for seed in SEEDS {
                cells.push(snapshot_cell(n, &mode, name, seed));
                cells.push(renaming_cell(n, &mode, name, seed));
                cells.push(consensus_cell(n, &mode, name, seed));
                cells.push(double_collect_cell(n, &mode, name, seed));
            }
        }
    }

    // Model-check sweep telemetry, streamed through the probe layer.
    let sweeps = sweep_cells(jobs);
    let mut sink = JsonlSink::new(Vec::new());
    for ev in &sweeps {
        sink.on_sweep(ev);
    }

    // Consensus-under-chaos backoff telemetry (threaded; see E20 for the
    // full campaign).
    let backoff_cells: Vec<BackoffCell> = (0..3).map(backoff_chaos_cell).collect();

    // Cross-experiment perf trajectory from the committed artifacts.
    let trends = trend_rows();

    // JSON artifact.
    let mut root = Map::new();
    root.insert("schema_version".into(), 4u64.to_value());
    root.insert("experiment".into(), Value::String("obs_report".into()));
    root.insert(
        "config".into(),
        Value::Object(Map::from_iter([
            ("sizes".into(), SIZES.to_vec().to_value()),
            ("seeds".into(), SEEDS.collect::<Vec<u64>>().to_value()),
            ("budget".into(), (BUDGET as u64).to_value()),
        ])),
    );
    root.insert(
        "cells".into(),
        Value::Array(cells.iter().map(cell_json).collect()),
    );
    root.insert(
        "sweeps".into(),
        Value::Array(sweeps.iter().map(serde_json::to_value).collect()),
    );
    root.insert(
        "consensus_backoff".into(),
        Value::Array(backoff_cells.iter().map(backoff_cell_json).collect()),
    );
    root.insert(
        "trends".into(),
        Value::Array(trends.iter().map(trend_json).collect()),
    );
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serialize report");
    fs::create_dir_all("results").expect("create results dir");
    let mut f = fs::File::create("results/obs_report.json").expect("create report");
    writeln!(f, "{json}").expect("write report");
    fs::write("results/obs_sweeps.jsonl", sink.into_inner()).expect("write sweep stream");

    // Markdown summary: aggregate each (algorithm, wiring, n) group.
    println!("== unified probe report: counters, coverings, resets ==\n");
    let mut rows = Vec::new();
    for n in SIZES {
        for (wname, _) in wiring_modes() {
            for alg in ["snapshot", "renaming", "consensus", "double_collect"] {
                let group: Vec<&Cell> = cells
                    .iter()
                    .filter(|c| c.algorithm == alg && c.wiring == wname && c.n == n)
                    .collect();
                let runs = group.len();
                let completed = group.iter().filter(|c| c.completed).count();
                let mean = |f: &dyn Fn(&RunMetrics) -> u64| -> f64 {
                    group.iter().map(|c| f(&c.metrics) as f64).sum::<f64>() / runs as f64
                };
                let peak = group
                    .iter()
                    .map(|c| c.metrics.peak_covering)
                    .max()
                    .unwrap_or(0);
                rows.push(vec![
                    alg.to_string(),
                    wname.to_string(),
                    n.to_string(),
                    format!("{completed}/{runs}"),
                    format!("{:.0}", mean(&|m| m.total_steps)),
                    format!("{:.0}", mean(&|m| m.total_reads())),
                    format!("{:.0}", mean(&|m| m.total_writes())),
                    format!(
                        "{}",
                        group.iter().map(|c| c.metrics.total_resets()).sum::<u64>()
                    ),
                    peak.to_string(),
                ]);
            }
        }
    }
    print_table(
        &[
            "algorithm",
            "wiring",
            "n",
            "completed",
            "mean steps",
            "mean reads",
            "mean writes",
            "resets",
            "peak covering",
        ],
        &rows,
    );
    // Sweep telemetry table.
    println!("\n== model-check sweep telemetry ==\n");
    #[allow(clippy::cast_precision_loss)]
    let sweep_rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                s.check.clone(),
                s.jobs.to_string(),
                format!("{}/{}", s.combos_attempted, s.combos_total),
                s.states.to_string(),
                s.peak_combo_states.to_string(),
                format!("{:.2}", s.elapsed_ns as f64 / 1e9),
                format!("{:.0}", s.states_per_sec()),
            ]
        })
        .collect();
    print_table(
        &[
            "check",
            "jobs",
            "combos",
            "states",
            "peak combo states",
            "elapsed s",
            "states/s",
        ],
        &sweep_rows,
    );

    // Consensus-under-chaos backoff telemetry table.
    println!("\n== consensus backoff under stall storm (threaded, E20) ==\n");
    let backoff_rows: Vec<Vec<String>> = backoff_cells
        .iter()
        .map(|c| {
            let attempts: u64 = c.events.iter().map(|e| e.attempts).sum();
            let backoffs: u64 = c.events.iter().map(|e| e.backoffs).sum();
            let total_ms: f64 =
                c.events.iter().map(|e| e.total_backoff_ns).sum::<u64>() as f64 / 1e6;
            let max_ms: f64 =
                c.events.iter().map(|e| e.max_backoff_ns).max().unwrap_or(0) as f64 / 1e6;
            vec![
                c.seed.to_string(),
                if c.all_decided { "yes" } else { "NO" }.to_string(),
                attempts.to_string(),
                backoffs.to_string(),
                format!("{total_ms:.2}"),
                format!("{max_ms:.2}"),
            ]
        })
        .collect();
    print_table(
        &[
            "seed",
            "all decided",
            "attempts",
            "backoffs",
            "total backoff ms",
            "max backoff ms",
        ],
        &backoff_rows,
    );

    // Perf-trajectory trends from the committed artifacts (E17–E24).
    println!("\n== perf trajectory across committed artifacts ==\n");
    let trend_table: Vec<Vec<String>> = trends
        .iter()
        .map(|t| {
            vec![
                t.experiment.to_string(),
                t.metric.to_string(),
                t.value.clone().unwrap_or_else(|| "unavailable".into()),
                t.source.to_string(),
            ]
        })
        .collect();
    print_table(&["experiment", "metric", "value", "source"], &trend_table);

    println!(
        "\nwrote results/obs_report.json ({} cells, {} sweeps, {} backoff runs) and results/obs_sweeps.jsonl",
        cells.len(),
        sweeps.len(),
        backoff_cells.len()
    );
    println!("peak covering = max processors simultaneously poised to write (Section 2);");
    println!("resets = snapshot levels falling to 0 after covered writes surfaced.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heaviest_sweep_rate_picks_the_largest_sweep() {
        let sweeps: Vec<Value> = [
            serde_json::json!({"combos_total": 2, "states": 100, "elapsed_ns": 1_000_000_000u64}),
            serde_json::json!({"combos_total": 36, "states": 9_000, "elapsed_ns": 2_000_000_000u64}),
        ]
        .to_vec();
        let rendered = heaviest_sweep_rate(&sweeps).expect("well-formed sweeps");
        assert!(rendered.contains("4500 states/s"), "{rendered}");
        assert!(rendered.contains("9000 states"), "{rendered}");
        assert!(heaviest_sweep_rate(&[]).is_none());
        assert!(heaviest_sweep_rate(&[Value::Null]).is_none());
    }

    #[test]
    fn trend_rows_degrade_gracefully_without_artifacts() {
        // Unit tests run from the crate directory, where no results/
        // artifacts exist: every row must render (value = None), not panic.
        let rows = trend_rows();
        assert_eq!(rows.len(), 7, "one row per experiment E17..E24");
        for t in &rows {
            assert!(!t.experiment.is_empty());
            assert!(!t.source.is_empty());
        }
        let json: Vec<Value> = rows.iter().map(trend_json).collect();
        assert_eq!(json.len(), 7);
    }
}

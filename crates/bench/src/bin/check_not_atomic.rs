//! E5 — The snapshot task solution is NOT an atomic memory snapshot:
//! exhibits an execution in which a returned view corresponds to no point
//! in time of the memory (the paper's Section 8 TLC finding).
//!
//! See `fa_modelcheck::atomicity` for the two readings of "the memory
//! contained exactly the set of inputs I"; the witness below is under the
//! announcement reading (the one the paper's own atomic-scan TLC spec can
//! falsify), and the momentary reading's negative result is reported too.

use fa_memory::Wiring;
use fa_modelcheck::atomicity::{
    find_momentary_witness_in, find_non_atomic_snapshot, verify_witness,
};

fn main() {
    println!("== E5: non-atomicity witness (3 processors) ==\n");
    let inputs = [1u32, 2, 3];
    match find_non_atomic_snapshot(&inputs, 3_000_000) {
        Some(w) => {
            println!("witness found (announcement reading):");
            println!(
                "  wirings:  {:?}",
                w.wirings
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
            println!("  schedule: {:?} ({} steps)", w.schedule, w.schedule.len());
            println!(
                "  {} outputs {} — a set of inputs the memory never contained",
                w.proc, w.output
            );
            println!(
                "  input sets the memory did contain: {:?}",
                w.memory_sets_seen
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
            let ok = verify_witness(&inputs, &w);
            println!("  witness replays and verifies: {ok}");
            assert!(ok);
        }
        None => {
            println!("no witness found within the budget — raise the budget");
            std::process::exit(1);
        }
    }

    println!("\ncontrol 1: 2 processors, same search…");
    match find_non_atomic_snapshot(&[1u32, 2], 3_000_000) {
        Some(w) => println!("  2-processor witness: {} by {}", w.output, w.proc),
        None => println!("  no 2-processor witness found"),
    }

    println!("\ncontrol 2: momentary reading (union of current registers)…");
    let combos: Vec<Vec<Wiring>> = vec![
        vec![Wiring::identity(3); 3],
        vec![
            Wiring::identity(3),
            Wiring::cyclic_shift(3, 1),
            Wiring::cyclic_shift(3, 2),
        ],
    ];
    let mut found_any = false;
    for combo in &combos {
        if let Some(w) = find_momentary_witness_in(&inputs, combo, 400_000) {
            println!("  unexpected momentary witness: {}", w.output);
            found_any = true;
        }
    }
    if !found_any {
        println!(
            "  none within 400k states/candidate on representative wirings —\n  \
             consistent with the impossibility argument for the paper's\n  \
             atomic-scan spec"
        );
    }
}

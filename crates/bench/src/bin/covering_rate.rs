//! Quantifying the covering phenomenon: what fraction of writes is
//! overwritten before anyone reads it, as a function of processor count and
//! wiring mode. Covering (lost writes) is exactly what makes the
//! fully-anonymous model hard (Sections 1, 2.1, 4).

use fa_bench::print_table;
use fa_core::{SnapRegister, SnapshotProcess};
use fa_memory::{Executor, RandomScheduler, SharedMemory, Wiring};
use rand::SeedableRng;

fn rate(n: usize, wirings: Vec<Wiring>, seed: u64) -> (usize, usize) {
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings).expect("memory");
    let mut exec = Executor::new(procs, memory).expect("executor");
    exec.record_trace(true);
    exec.run(
        RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed)),
        100_000_000,
    )
    .expect("run");
    exec.trace().expect("trace").lost_writes(n)
}

fn main() {
    println!("== covering rate: lost writes / total writes (snapshot runs) ==\n");
    let runs = 25u64;
    let mut rows = Vec::new();
    for n in 2..=8usize {
        let mut acc = Vec::new();
        for (label, make) in [
            (
                "identity",
                (|n: usize, _s: u64| vec![Wiring::identity(n); n]) as fn(usize, u64) -> Vec<Wiring>,
            ),
            ("random", |n, s| {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(s ^ 0x5712_a8ee);
                (0..n).map(|_| Wiring::random(n, &mut rng)).collect()
            }),
        ] {
            let mut lost = 0usize;
            let mut total = 0usize;
            for seed in 0..runs {
                let (l, t) = rate(n, make(n, seed), seed);
                lost += l;
                total += t;
            }
            acc.push((label, lost as f64 / total as f64));
        }
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", acc[0].1 * 100.0),
            format!("{:.1}%", acc[1].1 * 100.0),
        ]);
    }
    print_table(
        &[
            "n",
            "lost writes (identity)",
            "lost writes (random wirings)",
        ],
        &rows,
    );
    println!("\nA substantial fraction of all writes transfers no information —");
    println!("the covering phenomenon the paper's level mechanism must defeat.");
}

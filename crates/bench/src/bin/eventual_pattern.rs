//! E2 — The eventual pattern (Theorem 4.8): over many adversarial lasso
//! schedules and random wirings, the stable views always form a DAG with a
//! unique source.

use fa_bench::{print_table, rng};
use fa_core::figure2::{core_schedule, core_wirings};
use fa_core::stable_view::{analyze_lasso, analyze_random};
use fa_memory::{LassoSchedule, ProcId, Wiring};
use rand::Rng;

fn random_lasso(n: usize, r: &mut impl Rng) -> LassoSchedule {
    let prefix_len = r.gen_range(0..20);
    let cycle_len = r.gen_range(4..40);
    let prefix: Vec<ProcId> = (0..prefix_len).map(|_| ProcId(r.gen_range(0..n))).collect();
    // Every processor appears in the cycle at least once (all live), plus
    // random filler.
    let mut cycle: Vec<ProcId> = (0..n).map(ProcId).collect();
    for _ in 0..cycle_len {
        cycle.push(ProcId(r.gen_range(0..n)));
    }
    LassoSchedule::new(prefix, cycle)
}

fn main() {
    println!("== E2: stable views form a single-source DAG (Theorem 4.8) ==\n");

    // The canonical instance: Figure 2's lasso.
    let fig2 = analyze_lasso(&[1, 2, 3], 3, core_wirings(), &core_schedule(), 1000)
        .expect("figure 2 lasso stabilizes");
    println!(
        "figure-2 lasso: {} stable views, sources {:?}, dag={}, unique_source={}\n",
        fig2.graph.vertices().len(),
        fig2.graph
            .sources()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        fig2.graph.is_dag(),
        fig2.graph.has_unique_source()
    );
    assert!(fig2.graph.has_unique_source());

    // Randomized sweep: n ∈ 2..=6, random wirings, random lassos.
    let mut rows = Vec::new();
    let mut all_ok = true;
    for n in 2..=6usize {
        let trials = 200;
        let mut unique = 0usize;
        let mut multi_vertex = 0usize;
        let mut max_vertices = 0usize;
        for t in 0..trials {
            let mut r = rng((n as u64) << 32 | t);
            let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut r)).collect();
            let inputs: Vec<u32> = (0..n as u32).map(|i| i + 1).collect();
            let sched = random_lasso(n, &mut r);
            let report =
                analyze_lasso(&inputs, n, wirings, &sched, 50_000).expect("lasso stabilizes");
            assert!(report.graph.is_dag());
            if report.graph.has_unique_source() {
                unique += 1;
            } else {
                all_ok = false;
            }
            if report.graph.vertices().len() > 1 {
                multi_vertex += 1;
            }
            max_vertices = max_vertices.max(report.graph.vertices().len());
        }
        rows.push(vec![
            n.to_string(),
            trials.to_string(),
            unique.to_string(),
            multi_vertex.to_string(),
            max_vertices.to_string(),
        ]);
    }
    print_table(
        &[
            "n",
            "lassos",
            "unique source",
            "nontrivial graphs",
            "max distinct views",
        ],
        &rows,
    );
    println!("\nTheorem 4.8 held in every trial: {all_ok}");
    assert!(all_ok);

    // Control: random fair schedules converge to a single full view.
    let control = analyze_random(
        &[1, 2, 3, 4],
        4,
        vec![Wiring::identity(4); 4],
        7,
        2_000,
        5_000_000,
    )
    .expect("random analysis runs");
    println!(
        "\ncontrol (fair random schedule): {} stable view(s) — convergence to the full set",
        control.graph.vertices().len()
    );
}

//! E1 — Reproduces Figure 2: the pathological infinite execution in which
//! `p2` and `p3` keep incomparable views forever, plus the 5-processor
//! extension where the shadow processors read constant incomparable sets.

use fa_bench::print_table;
use fa_core::figure2::{expected_rows, run_figure2, run_figure2_extended};

fn main() {
    println!("== E1: Figure 2 — the pathological execution ==\n");
    let observed = run_figure2().expect("figure 2 construction runs");
    let expected = expected_rows();

    let rows: Vec<Vec<String>> = observed
        .iter()
        .zip(&expected)
        .map(|(o, e)| {
            let ok = o.registers == e.registers && o.views == e.views;
            vec![
                o.row.to_string(),
                o.action.to_string(),
                o.registers[0].to_string(),
                o.registers[1].to_string(),
                o.registers[2].to_string(),
                o.views[0].to_string(),
                o.views[1].to_string(),
                o.views[2].to_string(),
                if ok {
                    "✓".to_string()
                } else {
                    "MISMATCH".to_string()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "row",
            "action",
            "r1",
            "r2",
            "r3",
            "view[p1]",
            "view[p2]",
            "view[p3]",
            "matches paper",
        ],
        &rows,
    );
    let all_match = observed
        .iter()
        .zip(&expected)
        .all(|(o, e)| o.registers == e.registers && o.views == e.views);
    println!("\nall 13 rows match the paper: {all_match}");
    assert!(all_match, "figure 2 reproduction diverged from the paper");

    println!("\n== E1 (extension): shadows p and p' over 30 cycles ==\n");
    let ext = run_figure2_extended(30).expect("extension runs");
    println!(
        "final views: p1={} p2={} p3={} p={} p'={}",
        ext.final_views[0],
        ext.final_views[1],
        ext.final_views[2],
        ext.final_views[3],
        ext.final_views[4]
    );
    let p_ok = ext.shadow_p_reads.iter().all(|v| v.to_string() == "{1,2}");
    let pp_ok = ext
        .shadow_p_prime_reads
        .iter()
        .all(|v| v.to_string() == "{1,3}");
    println!(
        "shadow p performed {} reads, all equal to {{1,2}}: {p_ok}",
        ext.shadow_p_reads.len()
    );
    println!(
        "shadow p' performed {} reads, all equal to {{1,3}}: {pp_ok}",
        ext.shadow_p_prime_reads.len()
    );
    println!(
        "stable views: {:?}",
        ext.stable_views
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    assert!(p_ok && pp_ok);
}

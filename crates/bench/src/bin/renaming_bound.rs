//! E6 — Adaptive renaming: names fall in 1..=M(M+1)/2 where M is the number
//! of *participating groups*, names never collide across groups, and the
//! bound is adaptive (depends on participation, not on N).
//!
//! Honors the shared sweep flags (`--jobs`, `--strategy auto|serial|pool|
//! intra[:N]`, `--quotient`, `--visited-budget`,
//! `--checkpoint-dir`/`--checkpoint-every`/`--resume`, `--memory-limit`).
//! Exit codes: 0 clean, 2 the model check finished incomplete (budget or
//! SIGINT/SIGTERM abort; resumable when checkpointed), 3 violation found.

use std::collections::BTreeSet;

use fa_bench::{
    check_config_from_cli, group_inputs, print_table, report_exit_code, signals, sweep_summary,
};
use fa_core::runner::{run_renaming_random, WiringMode};
use fa_modelcheck::checks::check_renaming_with;

fn main() {
    println!("== E6: adaptive renaming with M(M+1)/2 names ==\n");
    let mut rows = Vec::new();
    for n in 2..=8usize {
        for g in 1..=n.min(4) {
            let trials = 40;
            let mut max_name = 0usize;
            let mut ok = true;
            let mut max_groups = 0usize;
            for t in 0..trials {
                let inputs = group_inputs(n, g, (n as u64) << 24 | (g as u64) << 16 | t);
                let names = run_renaming_random(&inputs, t, &WiringMode::Random, 50_000_000)
                    .expect("renaming terminates");
                let groups: BTreeSet<u32> = inputs.iter().copied().collect();
                let m = groups.len();
                max_groups = max_groups.max(m);
                let bound = m * (m + 1) / 2;
                for (i, &a) in names.iter().enumerate() {
                    max_name = max_name.max(a);
                    ok &= a >= 1 && a <= bound;
                    for (j, &b) in names.iter().enumerate() {
                        if i != j && inputs[i] != inputs[j] {
                            ok &= a != b;
                        }
                    }
                }
            }
            let bound = max_groups * (max_groups + 1) / 2;
            rows.push(vec![
                n.to_string(),
                max_groups.to_string(),
                trials.to_string(),
                max_name.to_string(),
                bound.to_string(),
                ok.to_string(),
            ]);
            assert!(ok, "renaming violated at n={n} g={g}");
        }
    }
    print_table(
        &[
            "n procs",
            "max groups M",
            "trials",
            "max name seen",
            "bound M(M+1)/2",
            "all valid",
        ],
        &rows,
    );
    println!("\nNames never exceed M(M+1)/2 and never collide across groups;");
    println!("processors of the same group may share a name (allowed by group solvability).");

    // Exhaustive complement to the random trials above: model-check the
    // renaming algorithm over every interleaving and wiring combination
    // (mod relabeling) at small scope, honoring --jobs.
    println!("\n== exhaustive model check over all wirings (n=2) ==\n");
    let session = fa_bench::TelemetrySession::from_cli("renaming_bound");
    let mut config = check_config_from_cli();
    if let Some(registry) = session.registry() {
        config = config.with_telemetry(registry);
    }
    config = config.with_abort(signals::install_abort_handler());
    let outcome = check_renaming_with(&[1, 2], 500_000, &config).expect("check runs");
    let report = &outcome.report;
    println!(
        "combos={}/{} states={} complete={} violation={}",
        report.combos,
        report.total_combos,
        report.total_states,
        report.complete,
        report.violation.clone().unwrap_or_else(|| "none".into())
    );
    println!("{}", sweep_summary(&outcome.telemetry));
    assert!(report.violation.is_none(), "{:?}", report.violation);
    session.finish();
    // 0 clean / 2 incomplete-by-budget / 3 violation.
    std::process::exit(report_exit_code(report));
}

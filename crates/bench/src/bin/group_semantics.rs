//! E10 — Group solvability semantics (Section 3.2): the paper's example of a
//! legal group snapshot with incomparable same-group outputs, and the
//! output-sample enumeration of Definition 3.4.

use std::collections::BTreeSet;

use fa_bench::print_table;
use fa_tasks::{check_group_solution, GroupAssignment, GroupId, SampleIter, Snapshot, Task};

fn gset(ids: &[usize]) -> BTreeSet<GroupId> {
    ids.iter().map(|&g| GroupId(g)).collect()
}

fn main() {
    println!("== E10: group solvability (Definition 3.4) ==\n");
    // The paper's example: groups A={p0}, B={p1,p2}, C={p3}; outputs
    // {A,B,C}, {A,B}, {B,C}, {A,B,C}.
    let groups = GroupAssignment::new(vec![GroupId(0), GroupId(1), GroupId(1), GroupId(2)]);
    let outputs = vec![
        Some(gset(&[0, 1, 2])),
        Some(gset(&[0, 1])),
        Some(gset(&[1, 2])),
        Some(gset(&[0, 1, 2])),
    ];

    println!("processors: p0∈A, p1∈B, p2∈B, p3∈C");
    println!("outputs:    p0={{A,B,C}} p1={{A,B}} p2={{B,C}} p3={{A,B,C}}");
    println!("note:       p1 and p2 (same group) return incomparable sets\n");

    let iter = SampleIter::new(&groups, &outputs);
    println!("output samples to check: {}\n", iter.sample_count());
    let mut rows = Vec::new();
    for (assignment, reps) in iter {
        let verdict = Snapshot.check(&assignment);
        rows.push(vec![
            format!("{reps:?}"),
            format!("{assignment:?}"),
            match &verdict {
                Ok(()) => "valid".to_string(),
                Err(e) => format!("INVALID: {e}"),
            },
        ]);
    }
    print_table(&["representatives", "induced assignment", "verdict"], &rows);

    let checked = check_group_solution(&Snapshot, &groups, &outputs)
        .expect("the paper's example is a legal group solution");
    println!("\nall {checked} samples valid: the outputs group-solve the snapshot task");

    // Counter-example: incomparable outputs across *different* groups.
    let bad_groups = GroupAssignment::new(vec![GroupId(0), GroupId(1)]);
    let bad_outputs = vec![Some(gset(&[0])), Some(gset(&[1]))];
    let err = check_group_solution(&Snapshot, &bad_groups, &bad_outputs)
        .expect_err("cross-group incomparability is illegal");
    println!("\ncontrol (incomparable outputs across groups): rejected — {err}");
}

//! E22 — live-telemetry probe overhead.
//!
//! Runs the same E18-style coarse-scan model-check sweep (n = 4, bounded
//! states per wiring combo) under two arms:
//!
//! 1. **plain** — no telemetry attached (the `NoProbe` configuration);
//! 2. **live** — a shared [`MetricRegistry`] attached to every explorer
//!    (`mc.*` counters, gauges, and the sampled dedup span) *plus* a running
//!    background [`TelemetryEmitter`] streaming snapshots to a JSONL file —
//!    the full telemetry plane a long-running campaign would carry.
//!
//! The arms are interleaved (plain, live, plain, live, ...) and each arm's
//! throughput is the best of its repetitions: run-to-run scheduler and
//! frequency noise on a shared host dwarfs the probe cost, and best-of-N
//! on interleaved runs cancels the run-order bias a single A-then-B
//! comparison bakes in.
//!
//! Two checks gate the exit status:
//!
//! * **determinism** — the per-combo state counts must be identical between
//!   arms (telemetry is out-of-band; attaching it must not change
//!   exploration);
//! * **overhead** — the live arm's states/sec must be within
//!   `MAX_OVERHEAD_PCT` of the plain arm's.
//!
//! Artifacts: `results/telemetry_overhead.json` (full document) and the
//! `e22_*` keys merged into `BENCH_value_plane.json` (repo root).
//!
//! Usage: `cargo run --release -p fa-bench --bin telemetry_overhead
//! [-- --smoke]` (`--smoke` shrinks the sweep for CI; shapes unchanged).

use std::sync::Arc;
use std::time::{Duration, Instant};

use fa_bench::{cli_flag, cli_value};
use fa_core::SnapshotProcess;
use fa_modelcheck::wirings::ComboTable;
use fa_modelcheck::{Explorer, SweepTelemetry};
use fa_obs::{MetricRegistry, TelemetryConfig, TelemetryEmitter};
use serde_json::{json, Map, Value};

/// Acceptance threshold: the live telemetry plane may cost at most this
/// fraction of plain-sweep throughput.
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// The smoke budget: on small CI runners (often one core) the smoke arms
/// are 1-2 s and host noise alone reads as +-7% between arms, so smoke can
/// only catch *gross* regressions (an accidental per-step syscall, an
/// emitter busy-loop). The committed full-run artifact certifies the real
/// `MAX_OVERHEAD_PCT` claim.
const SMOKE_MAX_OVERHEAD_PCT: f64 = 12.0;

/// One sweep arm: per-combo state counts, elapsed seconds, states/sec.
fn sweep(
    combos: usize,
    max_states: usize,
    telemetry: Option<&SweepTelemetry>,
) -> (Vec<usize>, f64, f64) {
    let n = 4usize;
    let table = ComboTable::new(n, n);
    let count = combos.min(table.len());
    if let Some(tel) = telemetry {
        tel.combos_total.set(count as u64);
        tel.jobs.set(1);
    }
    let mut per_combo = Vec::with_capacity(count);
    let start = Instant::now();
    for i in 0..count {
        let procs: Vec<SnapshotProcess<u32>> =
            (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
        let mut explorer = Explorer::new(procs, n, Default::default(), table.combo(i))
            .with_coarse_scans()
            .with_max_states(max_states);
        if let Some(tel) = telemetry {
            explorer = explorer.with_telemetry(tel.explorer.clone());
        }
        let guard = telemetry.map(|tel| tel.expand.enter());
        let report = explorer.run(|_| Ok(()));
        drop(guard);
        if let Some(tel) = telemetry {
            tel.combos_done.inc();
            tel.combo_states.record(report.states as u64);
        }
        per_combo.push(report.states);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total: usize = per_combo.iter().sum();
    (per_combo, elapsed, total as f64 / elapsed)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = cli_flag("--smoke");
    let out_path = cli_value("--out").unwrap_or_else(|| "results/telemetry_overhead.json".into());
    let root_path = cli_value("--root-out").unwrap_or_else(|| "BENCH_value_plane.json".into());
    // Smoke takes the best of 5 interleaved reps over a meaningful combo
    // count: the arena engine (E23) finishes 96 combos in ~0.5s, where host
    // noise (±10%+) drowns the sub-1% probe cost and flips the gate; more
    // reps tighten the best-of max toward the machine's true rate.
    let (combos, cap, reps) = if smoke {
        (256usize, 2_000usize, 5usize)
    } else {
        (1_024, 2_000, 3)
    };

    // Live-arm plumbing: registry + handles + a background emitter streaming
    // snapshots, exactly what `check_snapshot --n4 --telemetry-jsonl` runs.
    let registry = Arc::new(MetricRegistry::new());
    let handles = SweepTelemetry::from_registry(&registry);
    let snap_path = std::env::temp_dir().join("fa_telemetry_overhead_snapshots.jsonl");
    let _ = std::fs::remove_file(&snap_path);
    // Cadence chosen so even the smoke sweep produces >= 10 snapshots
    // (5 reps x ~1s+ per live arm) without the emitter thread competing
    // for CPU with the sweep on small runners — on one core a 20 ms
    // cadence alone reads as ~6-10% "overhead".
    let emitter = TelemetryEmitter::start(
        Arc::clone(&registry),
        TelemetryConfig {
            cadence: Duration::from_millis(100),
            jsonl_path: Some(snap_path.clone()),
            progress: false,
            label: "telemetry_overhead".into(),
        },
    )
    .expect("emitter starts");

    // Interleaved repetitions; best rate per arm.
    let mut per_combo_plain = Vec::new();
    let mut per_combo_live = Vec::new();
    let (mut plain_s, mut plain_rate) = (f64::INFINITY, 0.0f64);
    let (mut live_s, mut live_rate) = (f64::INFINITY, 0.0f64);
    for rep in 1..=reps {
        eprintln!(
            "[telemetry_overhead] rep {rep}/{reps} plain sweep ({combos} combos, cap {cap})..."
        );
        let (pc, s, rate) = sweep(combos, cap, None);
        per_combo_plain = pc;
        if rate > plain_rate {
            (plain_s, plain_rate) = (s, rate);
        }
        eprintln!("[telemetry_overhead] rep {rep}/{reps} live sweep (registry + emitter)...");
        let (pc, s, rate) = sweep(combos, cap, Some(&handles));
        per_combo_live = pc;
        if rate > live_rate {
            (live_s, live_rate) = (s, rate);
        }
    }
    let summary = emitter.stop();
    assert!(
        summary.io_error.is_none(),
        "snapshot stream error: {:?}",
        summary.io_error
    );

    // Determinism: telemetry must be out-of-band.
    let identical = per_combo_plain == per_combo_live;
    let overhead_pct = 100.0 * (plain_rate - live_rate) / plain_rate;
    let total_states: usize = per_combo_plain.iter().sum();

    println!("== E22: live-telemetry probe overhead (coarse n=4 sweep) ==\n");
    println!(
        "plain: {total_states} states in {plain_s:.2}s ({plain_rate:.0} states/s, best of {reps})"
    );
    println!(
        "live:  {total_states} states in {live_s:.2}s ({live_rate:.0} states/s, best of {reps}), {} snapshots",
        summary.snapshots
    );
    println!("per-combo state counts identical: {identical}");
    let budget_pct = if smoke {
        SMOKE_MAX_OVERHEAD_PCT
    } else {
        MAX_OVERHEAD_PCT
    };
    println!("overhead: {overhead_pct:.2}% (budget {budget_pct:.1}%)");

    // Registry exactness: the shared counter accumulates across the live
    // repetitions, so it must equal exactly reps x the real total.
    let counted = registry.counter("mc.states_total").get();
    assert_eq!(
        counted,
        (reps * total_states) as u64,
        "mc.states_total must count every admitted state"
    );

    let doc = json!({
        "experiment": "E22",
        "smoke": smoke,
        "combos": per_combo_plain.len(),
        "max_states_per_combo": cap,
        "repetitions_per_arm": reps,
        "total_states": total_states,
        "plain_states_per_sec": plain_rate,
        "live_states_per_sec": live_rate,
        "overhead_pct": overhead_pct,
        "overhead_budget_pct": budget_pct,
        "per_combo_identical": identical,
        "telemetry_snapshots": summary.snapshots,
        "telemetry_span_events": summary.span_events,
    });
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");

    // Merge the headline numbers into the root perf-trajectory document.
    let mut root: Map = std::fs::read_to_string(&root_path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .and_then(|v| match v {
            Value::Object(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    root.insert("e22_telemetry_overhead_pct".into(), json!(overhead_pct));
    root.insert("e22_states_per_sec_plain".into(), json!(plain_rate));
    root.insert("e22_states_per_sec_live".into(), json!(live_rate));
    root.insert("e22_snapshots".into(), json!(summary.snapshots));
    root.insert("e22_determinism_ok".into(), json!(identical));
    std::fs::write(
        &root_path,
        serde_json::to_string_pretty(&Value::Object(root)).expect("serialize") + "\n",
    )
    .unwrap_or_else(|e| panic!("cannot write {root_path}: {e}"));
    println!("merged e22_* keys into {root_path}");

    let enough_snapshots = summary.snapshots >= 10;
    if !enough_snapshots {
        eprintln!(
            "FAIL: only {} telemetry snapshots (want >= 10)",
            summary.snapshots
        );
    }
    if !identical {
        eprintln!("FAIL: telemetry changed per-combo exploration");
    }
    let within_budget = overhead_pct <= budget_pct;
    if !within_budget {
        eprintln!("FAIL: overhead {overhead_pct:.2}% exceeds {budget_pct:.1}%");
    }
    std::process::exit(i32::from(!(identical && within_budget && enough_snapshots)));
}

//! E4 — Wait-freedom in practice: steps-to-termination distribution of the
//! snapshot algorithm under seeded random schedules and random wirings.

use fa_bench::{print_table, snapshot_step_stats};

fn main() {
    println!("== E4: snapshot steps to termination (random schedules/wirings) ==\n");
    let mut rows = Vec::new();
    for n in 2..=10usize {
        let stats = snapshot_step_stats(n, 0..50).expect("runs complete");
        rows.push(vec![
            n.to_string(),
            stats.runs.to_string(),
            format!("{:.0}", stats.mean),
            stats.min.to_string(),
            stats.max.to_string(),
            format!("{:.1}", stats.mean / (n * n) as f64),
        ]);
    }
    print_table(
        &["n", "runs", "mean steps", "min", "max", "mean / n²"],
        &rows,
    );
    println!("\nEvery run terminated: the algorithm is wait-free in practice;");
    println!("growth tracks n² · scans (each scan is n+1 accesses, levels go to n).");
}

//! E21: the value-plane benchmark report.
//!
//! Measures the interned value plane (bitmask `View` fast path + `Arc`
//! register cells + interned model-checker keys) against the pre-interning
//! baseline (`Opaque` values, which pin `View` to its `BTreeSet` fallback),
//! and records the repo's perf trajectory in two artifacts:
//!
//! * `results/bench_report.json` — the full measurement document;
//! * `BENCH_value_plane.json` (repo root) — the headline numbers.
//!
//! Three sections:
//!
//! 1. **micro** — clone+union and eq+hash on views of 8..64 values, ns/op
//!    per representation and the speedup ratio;
//! 2. **scan** — end-to-end snapshot runs (the write–scan hot path) at
//!    n ∈ {4, 6}, steps/sec per representation;
//! 3. **sweep** — an E18-style coarse-scan model-check sweep at n = 4
//!    (bounded states per wiring combo), states/sec per representation,
//!    plus determinism checks: the per-combo state counts must be
//!    identical between representations (the refactor must not change
//!    exploration), and two runs of the new representation must serialize
//!    byte-identically.
//! 4. **E23 (arena engine)** — the same sweep driven through the legacy
//!    Arc-based BFS (`Explorer::run_arc`) as the baseline for the flat
//!    state-arena engine: per-combo counts must match exactly, and the
//!    headline `sweep_states_per_sec_arena` / `sweep_states_per_sec_arc`
//!    pair records the engine speedup.
//! 5. **E24 (symmetry quotient)** — the E18-class fully-symmetric coarse
//!    sweep run under `--quotient` semantics: records the measured orbit
//!    factor (estimated full-space states over canonical states explored),
//!    checks quotiented reruns render byte-identically, and *attempts* the
//!    n = 5 scope — far past any full sweep at (5!)⁴ ≈ 2·10⁸ combos — as a
//!    capped single-combo exploration pushed through the tiered visited
//!    store with a deliberately tiny memory budget.
//! 6. **E26 (intra-combo parallelism)** — the E23 sweep driven through the
//!    shared-frontier parallel BFS (`--strategy intra`) with one worker per
//!    core: per-combo counts must match the serial arena engine exactly
//!    (the level-commit determinism argument, DESIGN §15), and on a ≥4-core
//!    box the best-of-N states/s must reach ≥1.5× the E23 serial-per-combo
//!    rate (on smaller hosts the ratio is recorded but not gated).
//!
//! Exits nonzero if any determinism check fails.
//!
//! Usage: `cargo run --release -p fa-bench --bin bench_report [-- --smoke]`
//! (`--smoke` shrinks every budget for CI; artifact shapes are unchanged).

use std::hash::{Hash, Hasher};
use std::hint::black_box;
use std::time::Instant;

use fa_bench::{cli_flag, cli_value, Opaque};
use fa_core::{SnapshotProcess, View};
use fa_memory::{Executor, SharedMemory, Wiring};
use fa_modelcheck::checks::{check_snapshot_task_coarse_with, CheckConfig};
use fa_modelcheck::wirings::ComboTable;
use fa_modelcheck::Explorer;
use serde_json::json;

/// One micro measurement: nanoseconds per operation for both
/// representations, and how many times faster the bitmask path is.
struct Micro {
    name: &'static str,
    n_values: u32,
    bitmask_ns: f64,
    fallback_ns: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        self.fallback_ns / self.bitmask_ns
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "op": self.name,
            "values": self.n_values,
            "bitmask_ns_per_op": self.bitmask_ns,
            "fallback_ns_per_op": self.fallback_ns,
            "speedup": self.speedup(),
        })
    }
}

fn time_per_op<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // One warmup pass keeps first-touch allocation out of the measurement.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn micro_clone_union(iters: u32, n: u32) -> Micro {
    let (a, b): (View<u32>, View<u32>) = ((0..n / 2 + 1).collect(), (n / 2..n).collect());
    let bitmask_ns = time_per_op(iters, || {
        let mut v = black_box(&a).clone();
        v.union_with(black_box(&b));
        black_box(&v);
    });
    let (ao, bo): (View<Opaque>, View<Opaque>) = (
        (0..n / 2 + 1).map(Opaque).collect(),
        (n / 2..n).map(Opaque).collect(),
    );
    let fallback_ns = time_per_op(iters, || {
        let mut v = black_box(&ao).clone();
        v.union_with(black_box(&bo));
        black_box(&v);
    });
    Micro {
        name: "clone_union",
        n_values: n,
        bitmask_ns,
        fallback_ns,
    }
}

fn micro_eq_hash(iters: u32, n: u32) -> Micro {
    fn eq_hash<V: fa_core::ViewValue + Hash>(a: &View<V>, b: &View<V>) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        black_box(a).hash(&mut h);
        black_box(a) == black_box(b) && h.finish() != 0
    }
    let (a, b): (View<u32>, View<u32>) = ((0..n).collect(), (0..n).collect());
    let bitmask_ns = time_per_op(iters, || {
        black_box(eq_hash(&a, &b));
    });
    let (ao, bo): (View<Opaque>, View<Opaque>) =
        ((0..n).map(Opaque).collect(), (0..n).map(Opaque).collect());
    let fallback_ns = time_per_op(iters, || {
        black_box(eq_hash(&ao, &bo));
    });
    Micro {
        name: "eq_hash",
        n_values: n,
        bitmask_ns,
        fallback_ns,
    }
}

/// Steps/sec of a full snapshot run (round-robin, cyclic-shift wirings):
/// the write–scan hot path, dominated by register writes and scan unions.
fn scan_throughput<V, F>(n: usize, reps: u32, mk: F) -> (usize, f64)
where
    V: fa_core::ViewValue + Eq + std::hash::Hash + std::fmt::Debug + Default,
    F: Fn(u32) -> SnapshotProcess<V>,
{
    let mut steps = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        let procs: Vec<SnapshotProcess<V>> = (0..n as u32).map(&mk).collect();
        let wirings: Vec<Wiring> = (0..n).map(|s| Wiring::cyclic_shift(n, s)).collect();
        let memory = SharedMemory::new(n, Default::default(), wirings).expect("memory");
        let mut exec = Executor::new(procs, memory).expect("executor");
        exec.run_round_robin(1_000_000).expect("terminates");
        steps += exec.total_steps();
    }
    let per_sec = steps as f64 / start.elapsed().as_secs_f64();
    (steps, per_sec)
}

/// Which BFS engine a [`sweep`] drives per combo: the flat-arena serial
/// engine, the pre-arena Arc-based one (the E23 baseline), or the
/// shared-frontier parallel engine with N workers (the E26 arm).
#[derive(Clone, Copy)]
enum Engine {
    Arena,
    LegacyArc,
    Intra(usize),
}

/// One E18-style sweep: coarse-scan exploration of the first `combos`
/// wiring combinations at n = 4, bounded per combo. Returns the per-combo
/// state counts and the throughput.
fn sweep<V, F>(combos: usize, max_states: usize, engine: Engine, mk: F) -> (Vec<usize>, f64, f64)
where
    V: fa_core::ViewValue + Eq + std::hash::Hash + std::fmt::Debug + Default,
    V: Send + Sync,
    F: Fn(u32) -> SnapshotProcess<V>,
{
    let n = 4usize;
    let table = ComboTable::new(n, n);
    let count = combos.min(table.len());
    let mut per_combo = Vec::with_capacity(count);
    let start = Instant::now();
    for i in 0..count {
        let procs: Vec<SnapshotProcess<V>> = (0..n as u32).map(&mk).collect();
        let explorer = Explorer::new(procs, n, Default::default(), table.combo(i))
            .with_coarse_scans()
            .with_max_states(max_states);
        let report = match engine {
            Engine::Arena => explorer.run(|_| Ok(())),
            Engine::LegacyArc => explorer.run_arc(|_| Ok(())),
            Engine::Intra(workers) => explorer.run_intra(|_| Ok(()), workers),
        };
        per_combo.push(report.states);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total: usize = per_combo.iter().sum();
    (per_combo, elapsed, total as f64 / elapsed)
}

/// Runs [`sweep`] `reps` times and keeps the fastest rep. Throughput gates
/// compare against committed baselines, and a single short rep on a noisy
/// (virtualized, shared) host can easily read 30-50% low; the max over a few
/// reps is a far more stable estimate of the machine's true rate. Every rep
/// must visit identical per-combo state counts — a free determinism check.
fn sweep_best_of<V, F>(
    reps: usize,
    combos: usize,
    max_states: usize,
    engine: Engine,
    mk: F,
) -> (Vec<usize>, f64, f64)
where
    V: fa_core::ViewValue + Eq + std::hash::Hash + std::fmt::Debug + Default,
    V: Send + Sync,
    F: Fn(u32) -> SnapshotProcess<V>,
{
    let mut best: Option<(Vec<usize>, f64, f64)> = None;
    for _ in 0..reps.max(1) {
        let (per_combo, elapsed, rate) = sweep(combos, max_states, engine, &mk);
        match &best {
            Some((prev, _, prev_rate)) => {
                assert_eq!(prev, &per_combo, "sweep reps diverged");
                if rate > *prev_rate {
                    best = Some((per_combo, elapsed, rate));
                }
            }
            None => best = Some((per_combo, elapsed, rate)),
        }
    }
    best.expect("at least one rep")
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = cli_flag("--smoke");
    let out_path = cli_value("--out").unwrap_or_else(|| "results/bench_report.json".into());
    let root_path = cli_value("--root-out").unwrap_or_else(|| "BENCH_value_plane.json".into());

    let (micro_iters, scan_reps, sweep_combos, sweep_cap, sweep_reps) = if smoke {
        (20_000u32, 3u32, 96usize, 2_000usize, 3usize)
    } else {
        (200_000, 10, 1_024, 2_000, 2)
    };

    // 1. Micro: the view operations of the scan loop.
    eprintln!("[bench_report] micro ({micro_iters} iters/op)...");
    let micros = [
        micro_clone_union(micro_iters, 8),
        micro_clone_union(micro_iters, 32),
        micro_clone_union(micro_iters, 64),
        micro_eq_hash(micro_iters, 8),
        micro_eq_hash(micro_iters, 64),
    ];
    for m in &micros {
        eprintln!(
            "  {} n={}: bitmask {:.1} ns, fallback {:.1} ns ({:.1}x)",
            m.name,
            m.n_values,
            m.bitmask_ns,
            m.fallback_ns,
            m.speedup()
        );
    }

    // 2. Scan: end-to-end snapshot runs.
    eprintln!("[bench_report] scan path ({scan_reps} reps)...");
    let mut scans = Vec::new();
    for n in [4usize, 6] {
        let (steps_new, new_rate) = scan_throughput(n, scan_reps, |x| SnapshotProcess::new(x, n));
        let (steps_old, old_rate) =
            scan_throughput(n, scan_reps, |x| SnapshotProcess::new(Opaque(x), n));
        assert_eq!(
            steps_new, steps_old,
            "representations must take identical executions"
        );
        eprintln!(
            "  n={n}: bitmask {new_rate:.0} steps/s, fallback {old_rate:.0} steps/s ({:.2}x)",
            new_rate / old_rate
        );
        scans.push(json!({
            "n": n,
            "reps": scan_reps,
            "steps": steps_new,
            "bitmask_steps_per_sec": new_rate,
            "fallback_steps_per_sec": old_rate,
            "speedup": new_rate / old_rate,
        }));
    }

    // 3. Sweep: E18-style coarse model-check throughput + determinism.
    eprintln!("[bench_report] E18-style sweep ({sweep_combos} combos, cap {sweep_cap})...");
    let n = 4usize;
    let (per_combo_new, elapsed_new, rate_new) =
        sweep_best_of(sweep_reps, sweep_combos, sweep_cap, Engine::Arena, |x| {
            SnapshotProcess::new(x, n)
        });
    let (per_combo_old, elapsed_old, rate_old) =
        sweep_best_of(sweep_reps, sweep_combos, sweep_cap, Engine::Arena, |x| {
            SnapshotProcess::new(Opaque(x), n)
        });
    let (per_combo_again, _, _) = sweep(sweep_combos, sweep_cap, Engine::Arena, |x| {
        SnapshotProcess::new(x, n)
    });
    eprintln!(
        "  bitmask {rate_new:.0} states/s ({elapsed_new:.2}s), fallback {rate_old:.0} states/s ({elapsed_old:.2}s) ({:.2}x)",
        rate_new / rate_old
    );

    // 4. E23: the same sweep through the legacy Arc-based BFS — the
    // baseline the flat-arena engine replaced.
    eprintln!("[bench_report] E23 arena-vs-arc sweep ({sweep_combos} combos, cap {sweep_cap})...");
    let (per_combo_arc, elapsed_arc, rate_arc) = sweep_best_of(
        sweep_reps,
        sweep_combos,
        sweep_cap,
        Engine::LegacyArc,
        |x| SnapshotProcess::new(x, n),
    );
    eprintln!(
        "  arena {rate_new:.0} states/s ({elapsed_new:.2}s), arc {rate_arc:.0} states/s ({elapsed_arc:.2}s) ({:.2}x)",
        rate_new / rate_arc
    );

    // 6. E26: the same sweep through the shared-frontier parallel BFS, one
    // intra worker per core. The serial arena rate above (the committed E23
    // baseline's quantity) is the denominator of the headline speedup.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "[bench_report] E26 intra-combo sweep ({sweep_combos} combos, cap {sweep_cap}, {cores} workers)..."
    );
    let (per_combo_intra, elapsed_intra, rate_intra) = sweep_best_of(
        sweep_reps,
        sweep_combos,
        sweep_cap,
        Engine::Intra(cores),
        |x| SnapshotProcess::new(x, n),
    );
    let intra_speedup = rate_intra / rate_new;
    eprintln!(
        "  intra {rate_intra:.0} states/s ({elapsed_intra:.2}s), serial {rate_new:.0} states/s ({intra_speedup:.2}x on {cores} cores)"
    );

    // 5. E24: the symmetry quotient over the E18-class sweep — fully
    // symmetric inputs make the whole wiring group collapse, so the orbit
    // factor here is the headline compression number. Smoke keeps n = 3
    // (36 combos); the full run takes the real E18 scope at n = 4
    // (13824 combos, 762 canonical).
    let quot_n = if smoke { 3usize } else { 4 };
    let quot_inputs = vec![7u32; quot_n];
    eprintln!("[bench_report] E24 quotient sweep (n={quot_n}, cap {sweep_cap})...");
    let quot_config = CheckConfig::default().with_quotient();
    let quot_start = Instant::now();
    let quot =
        check_snapshot_task_coarse_with(&quot_inputs, sweep_cap, &quot_config).expect("check runs");
    let quot_elapsed = quot_start.elapsed().as_secs_f64();
    let quot_again =
        check_snapshot_task_coarse_with(&quot_inputs, sweep_cap, &quot_config).expect("check runs");
    // Determinism: the quotiented report renders byte-identically on rerun.
    let quotient_rerun_identical =
        format!("{:?}", quot.report) == format!("{:?}", quot_again.report);
    assert!(
        quot.report.violation.is_none(),
        "{:?}",
        quot.report.violation
    );
    let quot_stats = quot.report.quotient.clone().expect("quotiented report");
    let orbit_factor = quot_stats.orbit_factor();
    eprintln!(
        "  combos {}/{} ({} explored): {} canonical states for a full-space estimate of {} ({orbit_factor:.2}x) in {quot_elapsed:.2}s",
        quot.report.combos,
        quot.report.total_combos,
        quot_stats.combos_explored,
        quot_stats.canonical_states,
        quot_stats.full_states_estimate,
    );

    // The n = 5 attempt: the full sweep is out of reach for any engine
    // ((5!)^4 ≈ 2.1e8 wiring combos), so take one symmetric combo — where
    // the row quotient bites hardest — capped, with a visited budget small
    // enough that the run *must* live out of the disk tier.
    let n5 = 5usize;
    let n5_cap = if smoke { 2_000usize } else { 20_000 };
    let n5_budget = 64 * 1024usize;
    eprintln!("[bench_report] E24 n=5 attempt (cap {n5_cap}, visited budget {n5_budget} B)...");
    let n5_procs: Vec<SnapshotProcess<u32>> =
        (0..n5).map(|_| SnapshotProcess::new(7, n5)).collect();
    let n5_wirings: Vec<Wiring> = (0..n5).map(|_| Wiring::identity(n5)).collect();
    let n5_start = Instant::now();
    let n5_report = Explorer::new(n5_procs, n5, Default::default(), n5_wirings)
        .with_coarse_scans()
        .with_max_states(n5_cap)
        .with_quotient()
        .with_visited_budget(n5_budget)
        .run(|_| Ok(()));
    let n5_elapsed = n5_start.elapsed().as_secs_f64();
    assert!(n5_report.violation.is_none(), "n=5 prefix must be clean");
    let n5_est = n5_report
        .full_states_estimate
        .unwrap_or(n5_report.states as u64);
    eprintln!(
        "  {} canonical states (full-space estimate {n5_est}), {} shards spilled, complete={} in {n5_elapsed:.2}s",
        n5_report.states, n5_report.spilled_shards, n5_report.complete,
    );

    // Determinism check 1: both representations explore identical spaces.
    let repr_equivalent = per_combo_new == per_combo_old;
    // Determinism check 2: re-running the new representation serializes
    // byte-identically.
    let ser_a = serde_json::to_string(&per_combo_new).expect("serialize");
    let ser_b = serde_json::to_string(&per_combo_again).expect("serialize");
    let rerun_identical = ser_a == ser_b;
    // Determinism check 3: the arena engine visits exactly the states the
    // legacy Arc engine visits, combo by combo.
    let engine_equivalent = per_combo_new == per_combo_arc;
    // Determinism check 4: the shared-frontier parallel engine visits
    // exactly the serial engine's states, combo by combo.
    let intra_equivalent = per_combo_intra == per_combo_new;
    // Perf gate: the whole point of the intra engine is scaling, so on a
    // ≥4-core box require ≥1.5× over the serial-per-combo rate. On smaller
    // hosts the parallel engine cannot beat serial (there is nothing to
    // fan out over), so the ratio is recorded but not gated.
    let intra_gate_active = cores >= 4;
    let intra_gate_ok = !intra_gate_active || intra_speedup >= 1.5;
    if !repr_equivalent {
        eprintln!("[bench_report] FAIL: representations explored different state spaces");
    }
    if !rerun_identical {
        eprintln!("[bench_report] FAIL: re-run sweep report is not byte-identical");
    }
    if !engine_equivalent {
        eprintln!("[bench_report] FAIL: arena and arc engines explored different state spaces");
    }
    if !quotient_rerun_identical {
        eprintln!("[bench_report] FAIL: quotiented sweep re-run is not byte-identical");
    }
    if !intra_equivalent {
        eprintln!("[bench_report] FAIL: intra and serial engines explored different state spaces");
    }
    if !intra_gate_ok {
        eprintln!(
            "[bench_report] FAIL: intra sweep reached only {intra_speedup:.2}x the serial rate on {cores} cores (gate: 1.5x)"
        );
    }

    let determinism_ok = repr_equivalent
        && rerun_identical
        && engine_equivalent
        && quotient_rerun_identical
        && intra_equivalent
        && intra_gate_ok;
    let total_states: usize = per_combo_new.iter().sum();
    let sweep_doc = json!({
        "n": n,
        "combos": per_combo_new.len(),
        "max_states_per_combo": sweep_cap,
        "total_states": total_states,
        "bitmask_states_per_sec": rate_new,
        "fallback_states_per_sec": rate_old,
        "speedup": rate_new / rate_old,
        "arena_states_per_sec": rate_new,
        "arc_states_per_sec": rate_arc,
        "arena_speedup": rate_new / rate_arc,
        "intra_states_per_sec": rate_intra,
        "intra_workers": cores,
        "intra_speedup": intra_speedup,
        "intra_gate_active": intra_gate_active,
        "per_combo_states_fingerprint": short_hash(&ser_a),
    });
    let determinism_doc = json!({
        "representations_equivalent": repr_equivalent,
        "rerun_byte_identical": rerun_identical,
        "arena_matches_arc_engine": engine_equivalent,
        "quotient_rerun_byte_identical": quotient_rerun_identical,
        "intra_matches_serial_engine": intra_equivalent,
        "intra_speedup_gate_ok": intra_gate_ok,
    });
    let quotient_doc = json!({
        "n": quot_n,
        "inputs": quot_inputs,
        "max_states_per_combo": sweep_cap,
        "combos_total": quot.report.total_combos,
        "combos_explored": quot_stats.combos_explored,
        "canonical_states": quot_stats.canonical_states,
        "full_states_estimate": quot_stats.full_states_estimate,
        "orbit_factor": orbit_factor,
        "spilled_shards": quot_stats.spilled_shards,
        "elapsed_s": quot_elapsed,
        "n5_attempt": json!({
            "n": n5,
            "max_states": n5_cap,
            "visited_budget_bytes": n5_budget,
            "canonical_states": n5_report.states,
            "full_states_estimate": n5_est,
            "spilled_shards": n5_report.spilled_shards,
            "complete": n5_report.complete,
            "elapsed_s": n5_elapsed,
        }),
    });
    let doc = json!({
        "experiment": "E21+E23+E24+E26",
        "smoke": smoke,
        "micro": micros.iter().map(Micro::to_json).collect::<Vec<_>>(),
        "scan": scans,
        "sweep": sweep_doc,
        "quotient": quotient_doc,
        "determinism": determinism_doc,
    });

    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("json")).expect("write");

    // Merge the headline numbers into the root perf-trajectory document,
    // preserving keys other experiments own (e.g. E22's `e22_*`). Smoke runs
    // measure a much smaller sweep than the full run, so their headline keys
    // get a `smoke_` prefix: the two configurations keep separate baselines
    // and CI's regression gate compares smoke-to-smoke.
    let mut root: serde_json::Map = std::fs::read_to_string(&root_path)
        .ok()
        .and_then(|t| serde_json::from_str::<serde_json::Value>(&t).ok())
        .and_then(|v| match v {
            serde_json::Value::Object(m) => Some(m),
            _ => None,
        })
        .unwrap_or_default();
    let prefix = if smoke { "smoke_" } else { "" };
    root.insert("experiment".into(), json!("E21+E23+E24+E26"));
    for (key, value) in [
        (
            "min_micro_speedup",
            json!(micros
                .iter()
                .map(Micro::speedup)
                .fold(f64::INFINITY, f64::min)),
        ),
        ("scan_speedup_n4", scans[0]["speedup"].clone()),
        ("sweep_states_per_sec_bitmask", json!(rate_new)),
        ("sweep_states_per_sec_fallback", json!(rate_old)),
        ("sweep_speedup", json!(rate_new / rate_old)),
        ("sweep_states_per_sec_arena", json!(rate_new)),
        ("sweep_states_per_sec_arc", json!(rate_arc)),
        ("arena_sweep_speedup", json!(rate_new / rate_arc)),
        ("sweep_states_per_sec_intra", json!(rate_intra)),
        ("intra_workers", json!(cores)),
        ("intra_sweep_speedup", json!(intra_speedup)),
        ("intra_gate_active", json!(intra_gate_active)),
        ("quotient_orbit_factor", json!(orbit_factor)),
        (
            "quotient_canonical_states",
            json!(quot_stats.canonical_states),
        ),
        (
            "quotient_n5_spilled_shards",
            json!(n5_report.spilled_shards),
        ),
        ("determinism_ok", json!(determinism_ok)),
    ] {
        root.insert(format!("{prefix}{key}"), value);
    }
    std::fs::write(
        &root_path,
        serde_json::to_string_pretty(&serde_json::Value::Object(root)).expect("json") + "\n",
    )
    .expect("write");
    eprintln!("[bench_report] wrote {out_path} and merged headline keys into {root_path}");

    if !determinism_ok {
        std::process::exit(1);
    }
}

/// A short stable fingerprint of the per-combo report, so the committed
/// artifact records *what* was explored without carrying thousands of
/// numbers.
fn short_hash(s: &str) -> String {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    format!("{:016x}", h.finish())
}

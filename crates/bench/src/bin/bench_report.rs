//! E21: the value-plane benchmark report.
//!
//! Measures the interned value plane (bitmask `View` fast path + `Arc`
//! register cells + interned model-checker keys) against the pre-interning
//! baseline (`Opaque` values, which pin `View` to its `BTreeSet` fallback),
//! and records the repo's perf trajectory in two artifacts:
//!
//! * `results/bench_report.json` — the full measurement document;
//! * `BENCH_value_plane.json` (repo root) — the headline numbers.
//!
//! Three sections:
//!
//! 1. **micro** — clone+union and eq+hash on views of 8..64 values, ns/op
//!    per representation and the speedup ratio;
//! 2. **scan** — end-to-end snapshot runs (the write–scan hot path) at
//!    n ∈ {4, 6}, steps/sec per representation;
//! 3. **sweep** — an E18-style coarse-scan model-check sweep at n = 4
//!    (bounded states per wiring combo), states/sec per representation,
//!    plus two determinism checks: the per-combo state counts must be
//!    identical between representations (the refactor must not change
//!    exploration), and two runs of the new representation must serialize
//!    byte-identically.
//!
//! Exits nonzero if either determinism check fails.
//!
//! Usage: `cargo run --release -p fa-bench --bin bench_report [-- --smoke]`
//! (`--smoke` shrinks every budget for CI; artifact shapes are unchanged).

use std::hash::{Hash, Hasher};
use std::hint::black_box;
use std::time::Instant;

use fa_bench::{cli_flag, cli_value, Opaque};
use fa_core::{SnapshotProcess, View};
use fa_memory::{Executor, SharedMemory, Wiring};
use fa_modelcheck::wirings::ComboTable;
use fa_modelcheck::Explorer;
use serde_json::json;

/// One micro measurement: nanoseconds per operation for both
/// representations, and how many times faster the bitmask path is.
struct Micro {
    name: &'static str,
    n_values: u32,
    bitmask_ns: f64,
    fallback_ns: f64,
}

impl Micro {
    fn speedup(&self) -> f64 {
        self.fallback_ns / self.bitmask_ns
    }

    fn to_json(&self) -> serde_json::Value {
        json!({
            "op": self.name,
            "values": self.n_values,
            "bitmask_ns_per_op": self.bitmask_ns,
            "fallback_ns_per_op": self.fallback_ns,
            "speedup": self.speedup(),
        })
    }
}

fn time_per_op<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // One warmup pass keeps first-touch allocation out of the measurement.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn micro_clone_union(iters: u32, n: u32) -> Micro {
    let (a, b): (View<u32>, View<u32>) = ((0..n / 2 + 1).collect(), (n / 2..n).collect());
    let bitmask_ns = time_per_op(iters, || {
        let mut v = black_box(&a).clone();
        v.union_with(black_box(&b));
        black_box(&v);
    });
    let (ao, bo): (View<Opaque>, View<Opaque>) = (
        (0..n / 2 + 1).map(Opaque).collect(),
        (n / 2..n).map(Opaque).collect(),
    );
    let fallback_ns = time_per_op(iters, || {
        let mut v = black_box(&ao).clone();
        v.union_with(black_box(&bo));
        black_box(&v);
    });
    Micro {
        name: "clone_union",
        n_values: n,
        bitmask_ns,
        fallback_ns,
    }
}

fn micro_eq_hash(iters: u32, n: u32) -> Micro {
    fn eq_hash<V: fa_core::ViewValue + Hash>(a: &View<V>, b: &View<V>) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        black_box(a).hash(&mut h);
        black_box(a) == black_box(b) && h.finish() != 0
    }
    let (a, b): (View<u32>, View<u32>) = ((0..n).collect(), (0..n).collect());
    let bitmask_ns = time_per_op(iters, || {
        black_box(eq_hash(&a, &b));
    });
    let (ao, bo): (View<Opaque>, View<Opaque>) =
        ((0..n).map(Opaque).collect(), (0..n).map(Opaque).collect());
    let fallback_ns = time_per_op(iters, || {
        black_box(eq_hash(&ao, &bo));
    });
    Micro {
        name: "eq_hash",
        n_values: n,
        bitmask_ns,
        fallback_ns,
    }
}

/// Steps/sec of a full snapshot run (round-robin, cyclic-shift wirings):
/// the write–scan hot path, dominated by register writes and scan unions.
fn scan_throughput<V, F>(n: usize, reps: u32, mk: F) -> (usize, f64)
where
    V: fa_core::ViewValue + Eq + std::hash::Hash + std::fmt::Debug + Default,
    F: Fn(u32) -> SnapshotProcess<V>,
{
    let mut steps = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        let procs: Vec<SnapshotProcess<V>> = (0..n as u32).map(&mk).collect();
        let wirings: Vec<Wiring> = (0..n).map(|s| Wiring::cyclic_shift(n, s)).collect();
        let memory = SharedMemory::new(n, Default::default(), wirings).expect("memory");
        let mut exec = Executor::new(procs, memory).expect("executor");
        exec.run_round_robin(1_000_000).expect("terminates");
        steps += exec.total_steps();
    }
    let per_sec = steps as f64 / start.elapsed().as_secs_f64();
    (steps, per_sec)
}

/// One E18-style sweep: coarse-scan exploration of the first `combos`
/// wiring combinations at n = 4, bounded per combo. Returns the per-combo
/// state counts and the throughput.
fn sweep<V, F>(combos: usize, max_states: usize, mk: F) -> (Vec<usize>, f64, f64)
where
    V: fa_core::ViewValue + Eq + std::hash::Hash + std::fmt::Debug + Default,
    F: Fn(u32) -> SnapshotProcess<V>,
{
    let n = 4usize;
    let table = ComboTable::new(n, n);
    let count = combos.min(table.len());
    let mut per_combo = Vec::with_capacity(count);
    let start = Instant::now();
    for i in 0..count {
        let procs: Vec<SnapshotProcess<V>> = (0..n as u32).map(&mk).collect();
        let report = Explorer::new(procs, n, Default::default(), table.combo(i))
            .with_coarse_scans()
            .with_max_states(max_states)
            .run(|_| Ok(()));
        per_combo.push(report.states);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let total: usize = per_combo.iter().sum();
    (per_combo, elapsed, total as f64 / elapsed)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = cli_flag("--smoke");
    let out_path = cli_value("--out").unwrap_or_else(|| "results/bench_report.json".into());
    let root_path = cli_value("--root-out").unwrap_or_else(|| "BENCH_value_plane.json".into());

    let (micro_iters, scan_reps, sweep_combos, sweep_cap) = if smoke {
        (20_000u32, 3u32, 96usize, 2_000usize)
    } else {
        (200_000, 10, 1_024, 2_000)
    };

    // 1. Micro: the view operations of the scan loop.
    eprintln!("[bench_report] micro ({micro_iters} iters/op)...");
    let micros = [
        micro_clone_union(micro_iters, 8),
        micro_clone_union(micro_iters, 32),
        micro_clone_union(micro_iters, 64),
        micro_eq_hash(micro_iters, 8),
        micro_eq_hash(micro_iters, 64),
    ];
    for m in &micros {
        eprintln!(
            "  {} n={}: bitmask {:.1} ns, fallback {:.1} ns ({:.1}x)",
            m.name,
            m.n_values,
            m.bitmask_ns,
            m.fallback_ns,
            m.speedup()
        );
    }

    // 2. Scan: end-to-end snapshot runs.
    eprintln!("[bench_report] scan path ({scan_reps} reps)...");
    let mut scans = Vec::new();
    for n in [4usize, 6] {
        let (steps_new, new_rate) = scan_throughput(n, scan_reps, |x| SnapshotProcess::new(x, n));
        let (steps_old, old_rate) =
            scan_throughput(n, scan_reps, |x| SnapshotProcess::new(Opaque(x), n));
        assert_eq!(
            steps_new, steps_old,
            "representations must take identical executions"
        );
        eprintln!(
            "  n={n}: bitmask {new_rate:.0} steps/s, fallback {old_rate:.0} steps/s ({:.2}x)",
            new_rate / old_rate
        );
        scans.push(json!({
            "n": n,
            "reps": scan_reps,
            "steps": steps_new,
            "bitmask_steps_per_sec": new_rate,
            "fallback_steps_per_sec": old_rate,
            "speedup": new_rate / old_rate,
        }));
    }

    // 3. Sweep: E18-style coarse model-check throughput + determinism.
    eprintln!("[bench_report] E18-style sweep ({sweep_combos} combos, cap {sweep_cap})...");
    let n = 4usize;
    let (per_combo_new, elapsed_new, rate_new) =
        sweep(sweep_combos, sweep_cap, |x| SnapshotProcess::new(x, n));
    let (per_combo_old, elapsed_old, rate_old) = sweep(sweep_combos, sweep_cap, |x| {
        SnapshotProcess::new(Opaque(x), n)
    });
    let (per_combo_again, _, _) = sweep(sweep_combos, sweep_cap, |x| SnapshotProcess::new(x, n));
    eprintln!(
        "  bitmask {rate_new:.0} states/s ({elapsed_new:.2}s), fallback {rate_old:.0} states/s ({elapsed_old:.2}s) ({:.2}x)",
        rate_new / rate_old
    );

    // Determinism check 1: both representations explore identical spaces.
    let repr_equivalent = per_combo_new == per_combo_old;
    // Determinism check 2: re-running the new representation serializes
    // byte-identically.
    let ser_a = serde_json::to_string(&per_combo_new).expect("serialize");
    let ser_b = serde_json::to_string(&per_combo_again).expect("serialize");
    let rerun_identical = ser_a == ser_b;
    if !repr_equivalent {
        eprintln!("[bench_report] FAIL: representations explored different state spaces");
    }
    if !rerun_identical {
        eprintln!("[bench_report] FAIL: re-run sweep report is not byte-identical");
    }

    let total_states: usize = per_combo_new.iter().sum();
    let sweep_doc = json!({
        "n": n,
        "combos": per_combo_new.len(),
        "max_states_per_combo": sweep_cap,
        "total_states": total_states,
        "bitmask_states_per_sec": rate_new,
        "fallback_states_per_sec": rate_old,
        "speedup": rate_new / rate_old,
        "per_combo_states_fingerprint": short_hash(&ser_a),
    });
    let determinism_doc = json!({
        "representations_equivalent": repr_equivalent,
        "rerun_byte_identical": rerun_identical,
    });
    let doc = json!({
        "experiment": "E21",
        "smoke": smoke,
        "micro": micros.iter().map(Micro::to_json).collect::<Vec<_>>(),
        "scan": scans,
        "sweep": sweep_doc,
        "determinism": determinism_doc,
    });
    let headline = json!({
        "experiment": "E21",
        "smoke": smoke,
        "min_micro_speedup": micros.iter().map(Micro::speedup).fold(f64::INFINITY, f64::min),
        "scan_speedup_n4": scans[0]["speedup"].clone(),
        "sweep_states_per_sec_bitmask": rate_new,
        "sweep_states_per_sec_fallback": rate_old,
        "sweep_speedup": rate_new / rate_old,
        "determinism_ok": repr_equivalent && rerun_identical,
    });

    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("json")).expect("write");
    std::fs::write(
        &root_path,
        serde_json::to_string_pretty(&headline).expect("json"),
    )
    .expect("write");
    eprintln!("[bench_report] wrote {out_path} and {root_path}");

    if !(repr_equivalent && rerun_identical) {
        std::process::exit(1);
    }
}

/// A short stable fingerprint of the per-combo report, so the committed
/// artifact records *what* was explored without carrying thousands of
/// numbers.
fn short_hash(s: &str) -> String {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    format!("{:016x}", h.finish())
}

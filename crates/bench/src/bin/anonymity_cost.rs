//! Probing the paper's Section 9 conjecture that "adding memory anonymity
//! to processor anonymity is no real hindrance": same algorithm, same
//! schedules, named (identity-wired) vs anonymous (random-wired) memory.
//! Computability is identical by construction here — the question measured
//! is the step-complexity cost of the unknown wiring.

use fa_bench::{print_table, StepStats};
use fa_core::runner::{run_snapshot_random, SnapshotRunConfig, WiringMode};

fn stats(n: usize, wiring: WiringMode, runs: u64) -> StepStats {
    let sample: Vec<usize> = (0..runs)
        .map(|seed| {
            let cfg = SnapshotRunConfig::new((0..n as u32).collect())
                .with_seed(seed)
                .with_wiring(wiring.clone());
            run_snapshot_random(&cfg).expect("terminates").total_steps
        })
        .collect();
    StepStats::from_sample(&sample)
}

fn main() {
    println!("== memory anonymity cost: identity vs random vs adversarial wirings ==\n");
    let runs = 40;
    let mut rows = Vec::new();
    for n in 2..=8usize {
        let named = stats(n, WiringMode::Identity, runs);
        let anon = stats(n, WiringMode::Random, runs);
        let cyclic = stats(n, WiringMode::CyclicShifts, runs);
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", named.mean),
            format!("{:.0}", anon.mean),
            format!("{:.0}", cyclic.mean),
            format!("{:.2}", anon.mean / named.mean),
        ]);
    }
    print_table(
        &[
            "n",
            "named (identity)",
            "anonymous (random)",
            "cyclic shifts",
            "anon/named",
        ],
        &rows,
    );
    println!("\nThe same wait-free algorithm runs in all three wirings (computability");
    println!("is unaffected, supporting the Section 9 conjecture); the wiring mainly");
    println!("shifts constants — under a random schedule, contention dominates.");
}

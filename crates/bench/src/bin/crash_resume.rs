//! E25 — crash/resume soak harness: proves the checkpoint journal makes
//! sweeps crash-safe by actually crashing them.
//!
//! The harness re-executes itself (`--child` mode) as real sweep processes,
//! kills them mid-flight — SIGKILL after a seeded random delay, or a
//! deterministic `FA_CRASH_AT=site@N` fault-injection site inside the
//! journal/explorer/spill write paths — resumes with `--resume`, and
//! requires every resumed chain to end in a report *byte-identical* to an
//! uninterrupted baseline of the same arm.
//!
//! Two arms per campaign: a plain sweep, and a `--quotient
//! --visited-budget` sweep whose spill shards live under the checkpoint dir
//! (so recovery also has stale shards to clean). Per arm the harness also
//! measures checkpoint overhead (checkpointed uninterrupted run vs. plain
//! run, best-of-K wall clock); full mode gates the *plain* arm at 5% —
//! the spill arm additionally buys fsync-on-shard-seal durability, whose
//! cost scales with shard count, not with journal bookkeeping.
//!
//! * `--smoke` — CI shape: n=3 coarse sweep, 3 kills per arm, overhead
//!   reported but not gated (shared-runner wall clocks are noisy).
//! * full (default) — symmetric n=4 coarse sweep, ≥10 kills per arm (≥20
//!   total), overhead gate enforced, document to `results/crash_resume.json`
//!   plus per-recovery `CheckpointEvent`s to
//!   `results/crash_resume_events.jsonl`.
//! * `--kills N` — total kill budget across both arms (default 20, smoke 6).
//! * `--seed S` — kill-schedule seed (default 0xE25).
//! * `--scratch DIR` — where checkpoint dirs and report files live (default
//!   under the system temp dir; kept on failure so CI can upload it).
//!
//! Exit codes: 0 every chain byte-identical and all gates passed; 1 any
//! recovery failure, report divergence, violation, or (full mode) overhead
//! breach.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use fa_bench::{check_config_from_cli, cli_flag, cli_value, report_exit_code, rng, signals};
use fa_modelcheck::checkpoint::{CRASH_ENV, JOURNAL_FILE};
use fa_modelcheck::checks::check_snapshot_task_coarse_with;
use fa_modelcheck::inspect_journal;
use fa_obs::{CheckpointAction, CheckpointEvent, JsonlSink, Probe};
use rand::Rng;
use serde_json::json;

/// One sweep arm: a tag for file names plus the extra child flags.
struct Arm {
    name: &'static str,
    extra: &'static [&'static str],
}

const ARMS: &[Arm] = &[
    Arm {
        name: "plain",
        extra: &[],
    },
    Arm {
        name: "spill",
        extra: &["--quotient", "--visited-budget", "4KiB"],
    },
];

/// What the parent does to one child process.
enum Plan {
    /// Let it run to completion.
    Run,
    /// SIGKILL after this delay (no-op if the child beats the clock).
    Timed(Duration),
    /// Arm `FA_CRASH_AT` so the child aborts itself at a write boundary.
    CrashAt(String),
}

/// Outcome of one child process, normal or violent.
struct ChildRun {
    /// Exit code when the child exited normally; `None` when a signal
    /// (our SIGKILL, or its own `FA_CRASH_AT` abort) took it down.
    code: Option<i32>,
    stderr: String,
    elapsed: Duration,
}

fn main() {
    if let Some(arm) = cli_value("--child") {
        child_main(&arm);
    }
    parent_main();
}

/// Child mode: one real sweep process. Reads the shared sweep flags
/// (`--jobs`, `--quotient`, `--visited-budget`, `--checkpoint-dir`,
/// `--checkpoint-every`, `--resume`) exactly like the sweep binaries do,
/// writes the canonical report text to `--report-out`, and exits with the
/// report's exit code.
fn child_main(arm: &str) -> ! {
    let cap: usize = cli_value("--cap")
        .and_then(|v| v.parse().ok())
        .expect("--cap STATES required in --child mode");
    let out = cli_value("--report-out").expect("--report-out FILE required in --child mode");
    let inputs: Vec<u32> = match arm {
        "n3" => vec![1, 2, 3],
        "n4" => vec![1, 2, 3, 4],
        other => panic!("unknown --child arm {other:?} (expected n3 or n4)"),
    };
    let config = check_config_from_cli().with_abort(signals::install_abort_handler());
    let outcome = check_snapshot_task_coarse_with(&inputs, cap, &config).expect("check runs");
    // The byte-identity contract covers the full deterministic surface:
    // the report itself plus the per-combo state counts (combo order is
    // canonical, so a resumed run that re-explored the wrong combos, or
    // replayed one twice, diverges here even if the totals happen to agree).
    let text = format!(
        "{:?}\nper_combo_states={:?}\n",
        outcome.report, outcome.telemetry.per_combo_states
    );
    fs::write(&out, text).expect("write report file");
    std::process::exit(report_exit_code(&outcome.report));
}

fn parent_main() {
    let smoke = cli_flag("--smoke");
    let seed: u64 = cli_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xE25);
    let total_kills: usize = cli_value("--kills")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 6 } else { 20 });
    let per_arm = total_kills.div_ceil(ARMS.len());
    let (arm_shape, cap, timing_runs) = if smoke {
        ("n3", 50_000usize, 1usize)
    } else {
        ("n4", 500, 2)
    };
    let scratch = cli_value("--scratch").map_or_else(
        || std::env::temp_dir().join(format!("fa_crash_resume_{}", std::process::id())),
        PathBuf::from,
    );
    fs::create_dir_all(&scratch).expect("create scratch dir");
    let exe = std::env::current_exe().expect("current_exe");
    let mut r = rng(seed);
    let mut failures: Vec<String> = Vec::new();
    let mut events: JsonlSink<Vec<u8>> = JsonlSink::new(Vec::new());
    let mut arm_docs = Vec::new();

    println!(
        "== E25: crash/resume soak ({} {} cap={} kills>={} seed={:#x}) ==\n",
        if smoke { "smoke" } else { "full" },
        arm_shape,
        cap,
        total_kills,
        seed
    );

    for arm in ARMS {
        println!("-- arm {} {:?} --", arm.name, arm.extra);

        // Uninterrupted, uncheckpointed baseline: reference bytes + clock.
        let base_report = scratch.join(format!("{}_baseline.report", arm.name));
        let mut base_best = Duration::MAX;
        let mut base_code = 0;
        for _ in 0..timing_runs {
            let run = run_child(
                &exe,
                &child_args(arm_shape, cap, &base_report, arm.extra, None),
                None,
                &Plan::Run,
            );
            match run.code {
                Some(c) if c == 0 || c == 2 => base_code = c,
                other => die(&format!(
                    "{}: baseline child failed (status {other:?}): {}",
                    arm.name, run.stderr
                )),
            }
            base_best = base_best.min(run.elapsed);
        }
        let baseline = fs::read(&base_report).expect("read baseline report");
        println!(
            "baseline: exit {} in {:.2}s",
            base_code,
            base_best.as_secs_f64()
        );

        // Checkpointed but uninterrupted: overhead clock + identity check.
        let ckpt_report = scratch.join(format!("{}_ckpt.report", arm.name));
        let mut ckpt_best = Duration::MAX;
        for i in 0..timing_runs {
            let dir = scratch.join(format!("{}_overhead{}", arm.name, i));
            let run = run_child(
                &exe,
                &child_args(arm_shape, cap, &ckpt_report, arm.extra, Some((&dir, false))),
                None,
                &Plan::Run,
            );
            if run.code != Some(base_code) {
                die(&format!(
                    "{}: checkpointed child exited {:?}, baseline {base_code}: {}",
                    arm.name, run.code, run.stderr
                ));
            }
            ckpt_best = ckpt_best.min(run.elapsed);
        }
        if fs::read(&ckpt_report).expect("read ckpt report") != baseline {
            failures.push(format!(
                "{}: checkpointed uninterrupted report diverges from baseline",
                arm.name
            ));
        }
        let overhead_pct = (ckpt_best.as_secs_f64() / base_best.as_secs_f64() - 1.0) * 100.0;
        println!(
            "checkpointed: {:.2}s (overhead {:+.2}%)",
            ckpt_best.as_secs_f64(),
            overhead_pct
        );

        // Kill/resume chains: crash the child until the arm's kill budget is
        // spent, resuming each chain until it finishes, then diff.
        let mut kills = 0usize;
        let mut chains = 0usize;
        let mut kill_seq = 0usize;
        let mut recoveries = 0usize;
        let mut truncated_total = 0u64;
        let mut pass = 0usize;
        while kills < per_arm && pass < per_arm * 3 + 5 {
            pass += 1;
            let dir = scratch.join(format!("{}_pass{}", arm.name, pass));
            let report = scratch.join(format!("{}_pass{}.report", arm.name, pass));
            let mut resume = false;
            loop {
                let plan = if kills < per_arm {
                    next_plan(&mut r, kill_seq, base_best, !arm.extra.is_empty())
                } else {
                    Plan::Run
                };
                let env = match &plan {
                    Plan::CrashAt(spec) => Some((CRASH_ENV, spec.clone())),
                    _ => None,
                };
                let run = run_child(
                    &exe,
                    &child_args(arm_shape, cap, &report, arm.extra, Some((&dir, resume))),
                    env,
                    &plan,
                );
                match run.code {
                    Some(c) if c == base_code => {
                        if fs::read(&report).expect("read chain report") != baseline {
                            failures.push(format!(
                                "{}: pass {pass} resumed report diverges from baseline \
                                 after {kills} kills so far",
                                arm.name
                            ));
                        }
                        chains += 1;
                        break;
                    }
                    Some(3) => {
                        failures.push(format!(
                            "{}: pass {pass} found a violation the baseline did not",
                            arm.name
                        ));
                        break;
                    }
                    Some(c) => {
                        failures.push(format!(
                            "{}: pass {pass} child exited {c} (recovery failure?): {}",
                            arm.name, run.stderr
                        ));
                        break;
                    }
                    None => {
                        // Killed — by our SIGKILL or its own FA_CRASH_AT
                        // abort. Inspect what the journal preserved, then
                        // resume the chain.
                        kills += 1;
                        kill_seq += 1;
                        resume = true;
                        if dir.join(JOURNAL_FILE).exists() {
                            match inspect_journal(&dir) {
                                Ok(rec) => {
                                    recoveries += 1;
                                    truncated_total += rec.truncated_bytes;
                                    let bytes = fs::metadata(dir.join(JOURNAL_FILE))
                                        .map(|m| m.len())
                                        .unwrap_or(0);
                                    events.on_checkpoint(&CheckpointEvent {
                                        action: CheckpointAction::Recovered,
                                        combo: None,
                                        combos_recorded: rec.completed.len() as u64,
                                        journal_bytes: bytes,
                                        truncated_bytes: rec.truncated_bytes,
                                    });
                                }
                                Err(e) => failures.push(format!(
                                    "{}: pass {pass} journal unreadable after kill: {e}",
                                    arm.name
                                )),
                            }
                        }
                    }
                }
            }
        }
        println!(
            "kills={kills} chains={chains} recoveries={recoveries} truncated_bytes={truncated_total}\n"
        );
        if kills < per_arm {
            failures.push(format!(
                "{}: only landed {kills}/{per_arm} kills in {pass} passes \
                 (sweep too fast for the kill schedule?)",
                arm.name
            ));
        }
        // The overhead gate applies to the plain arm only: the spill arm
        // fsyncs every sealed shard under the checkpoint dir (durability it
        // does not have without `--checkpoint-dir`), so its wall clock is
        // dominated by fsync cost, not journal bookkeeping.
        if !smoke && arm.extra.is_empty() && overhead_pct > 5.0 {
            failures.push(format!(
                "{}: checkpoint overhead {overhead_pct:.2}% exceeds the 5% gate",
                arm.name
            ));
        }
        arm_docs.push(json!({
            "arm": arm.name,
            "extra_flags": arm.extra,
            "baseline_exit": base_code,
            "baseline_secs": base_best.as_secs_f64(),
            "checkpointed_secs": ckpt_best.as_secs_f64(),
            "overhead_pct": overhead_pct,
            "kills": kills,
            "chains_completed": chains,
            "recoveries_inspected": recoveries,
            "truncated_bytes_total": truncated_total,
        }));
    }

    let doc = json!({
        "experiment": "e25_crash_resume",
        "mode": if smoke { "smoke" } else { "full" },
        "shape": arm_shape,
        "cap": cap,
        "seed": seed,
        "kills_requested": total_kills,
        "arms": arm_docs,
        "failures": failures,
    });
    fs::create_dir_all("results").expect("create results dir");
    let (doc_path, events_path) = if smoke {
        (
            "results/crash_resume_smoke.json",
            "results/crash_resume_smoke_events.jsonl",
        )
    } else {
        (
            "results/crash_resume.json",
            "results/crash_resume_events.jsonl",
        )
    };
    fs::write(doc_path, serde_json::to_string_pretty(&doc).expect("json")).expect("write results");
    let stream = events.finish().expect("event stream intact");
    fs::write(events_path, stream).expect("write events");
    println!("wrote {doc_path} and {events_path}");

    if failures.is_empty() {
        // Nothing diverged: the scratch checkpoints have served their
        // purpose. Keep them only for post-mortems.
        let _ = fs::remove_dir_all(&scratch);
        println!("e25: OK — every resumed chain byte-identical to its baseline");
    } else {
        for f in &failures {
            eprintln!("e25 FAILURE: {f}");
        }
        eprintln!("scratch kept for inspection: {}", scratch.display());
        std::process::exit(1);
    }
}

/// Assembles the child argv for one run of the arm.
fn child_args(
    shape: &str,
    cap: usize,
    report_out: &Path,
    extra: &[&str],
    checkpoint: Option<(&Path, bool)>,
) -> Vec<String> {
    let mut args = vec![
        "--child".into(),
        shape.into(),
        "--cap".into(),
        cap.to_string(),
        "--report-out".into(),
        report_out.display().to_string(),
        "--jobs".into(),
        "2".into(),
    ];
    args.extend(extra.iter().map(|s| (*s).into()));
    if let Some((dir, resume)) = checkpoint {
        args.push("--checkpoint-dir".into());
        args.push(dir.display().to_string());
        // A small sync interval so SIGKILL rarely outruns the fsync cadence
        // and resumes actually have records to replay.
        args.push("--checkpoint-every".into());
        args.push("1KiB".into());
        if resume {
            args.push("--resume".into());
        }
    }
    args
}

/// Picks how to kill the `k`-th child: even turns get a seeded SIGKILL
/// delay scaled to the baseline wall clock, odd turns cycle through the
/// deterministic `FA_CRASH_AT` sites (spill arms also crash inside the
/// shard-seal fsync).
fn next_plan(r: &mut impl Rng, k: usize, baseline: Duration, spill: bool) -> Plan {
    if k % 2 == 0 {
        let ms = baseline.as_millis().clamp(50, 600_000) as u64;
        let lo = (ms / 20).max(2);
        let hi = (ms * 3 / 5).max(lo + 1);
        Plan::Timed(Duration::from_millis(r.gen_range(lo..hi)))
    } else {
        let sites: &[&str] = if spill {
            &[
                "journal.done",
                "explorer.poll",
                "store.spill",
                "journal.claim",
                "journal.sync",
            ]
        } else {
            &[
                "journal.done",
                "explorer.poll",
                "journal.claim",
                "journal.sync",
            ]
        };
        let site = sites[(k / 2) % sites.len()];
        let hit = match site {
            "journal.sync" => 1 + r.gen_range(0..3u32),
            "store.spill" => 1 + r.gen_range(0..5u32),
            _ => 1 + r.gen_range(0..60u32),
        };
        Plan::CrashAt(format!("{site}@{hit}"))
    }
}

/// Spawns one child, applies the kill plan, and collects its fate. Stdout
/// is discarded (the report file is the contract); stderr is kept for
/// failure messages.
fn run_child(exe: &Path, args: &[String], env: Option<(&str, String)>, plan: &Plan) -> ChildRun {
    let mut cmd = Command::new(exe);
    cmd.args(args).stdout(Stdio::null()).stderr(Stdio::piped());
    cmd.env_remove(CRASH_ENV);
    if let Some((k, v)) = env {
        cmd.env(k, v);
    }
    let start = Instant::now();
    let mut child = cmd.spawn().expect("spawn child sweep");
    if let Plan::Timed(delay) = plan {
        std::thread::sleep(*delay);
        if child.try_wait().expect("poll child").is_none() {
            let _ = child.kill();
        }
    }
    let out = child.wait_with_output().expect("collect child");
    ChildRun {
        code: out.status.code(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        elapsed: start.elapsed(),
    }
}

/// Unrecoverable harness setup failure (as opposed to a recorded arm
/// failure): print and exit 1 immediately.
fn die(msg: &str) -> ! {
    eprintln!("e25 FATAL: {msg}");
    std::process::exit(1);
}

//! Level dynamics: how the snapshot algorithm's levels climb toward N and
//! how contention resets them — the mechanism behind wait-freedom
//! (Section 5's intuition made visible).

use fa_bench::print_table;
use fa_core::metrics::snapshot_trajectories;
use fa_core::runner::WiringMode;

fn main() {
    println!("== level dynamics of the snapshot algorithm ==\n");
    let mut rows = Vec::new();
    for n in [2usize, 4, 6, 8] {
        let runs = 20;
        let mut resets_total = 0usize;
        let mut steps_total = 0usize;
        for seed in 0..runs {
            let inputs: Vec<u32> = (0..n as u32).collect();
            let t = snapshot_trajectories(&inputs, &WiringMode::Random, seed, 100_000_000)
                .expect("run completes");
            assert!(t.completed);
            resets_total += t.resets.iter().sum::<usize>();
            steps_total += t.total_steps;
        }
        rows.push(vec![
            n.to_string(),
            runs.to_string(),
            format!("{:.1}", resets_total as f64 / runs as f64),
            format!("{:.0}", steps_total as f64 / runs as f64),
        ]);
    }
    print_table(
        &["n", "runs", "mean level resets / run", "mean steps"],
        &rows,
    );

    println!("\nsample trajectory (n = 4, seed 3): time:level(view-size) per processor\n");
    let t = snapshot_trajectories(&[1, 2, 3, 4], &WiringMode::Random, 3, 100_000_000)
        .expect("run completes");
    for (i, traj) in t.per_proc.iter().enumerate() {
        let s: Vec<String> = traj
            .iter()
            .map(|p| format!("{}:{}({})", p.time, p.level, p.view_size))
            .collect();
        println!("p{i}: {}", s.join(" → "));
    }
    println!("\nresets per processor: {:?}", t.resets);
}

//! Chaos campaign binary (E20): fault injection on the threaded runtime.
//!
//! ```text
//! chaos [--smoke] [--seed N] [--out PATH] [--progress]
//!       [--telemetry-jsonl snap.jsonl] [--telemetry-cadence-ms N]
//! ```
//!
//! Runs the fixed-plan scenario matrix (crash-stop + poised-crash snapshot,
//! renaming under mixed faults, consensus-with-backoff under a stall storm,
//! panic containment) and writes `results/chaos_report.json` plus
//! `results/chaos_events.jsonl`. `--smoke` runs one seed per scenario.

fn main() {
    let smoke = fa_bench::cli_flag("--smoke");
    let seed = fa_bench::cli_value("--seed").map_or(0, |v| {
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("--seed wants an unsigned integer, got {v:?}"))
    });
    let out = fa_bench::cli_value("--out");
    let telemetry = fa_bench::TelemetrySession::from_cli("chaos");
    fa_bench::chaos_campaign::run_campaign(smoke, seed, out.as_deref(), telemetry.registry());
    telemetry.finish();
}

//! E8 — The Section 2.1 lower bound: with N−1 registers, N−1 covering
//! processors erase everything a solo processor wrote, making coordination
//! impossible; with N registers the coverage fails.

use fa_bench::print_table;
use fa_core::lower_bound::covering_demo;

fn main() {
    println!("== E8: N−1 registers are insufficient (covering construction) ==\n");
    let mut rows = Vec::new();
    for n in 2..=8usize {
        let report = covering_demo(n).expect("construction runs");
        rows.push(vec![
            n.to_string(),
            report.registers.to_string(),
            report.solo_output.to_string(),
            report.erased.to_string(),
            report.indistinguishable_to_q.to_string(),
        ]);
        assert!(report.erased && report.indistinguishable_to_q);
    }
    print_table(
        &[
            "N",
            "registers",
            "solo output",
            "p's info erased",
            "Q indistinguishable",
        ],
        &rows,
    );
    println!("\nAfter the covering writes, no register mentions the solo processor's");
    println!("input, and Q's states are identical whatever that input was: no");
    println!("read-write coordination between p and Q is possible with N−1 registers.");
}

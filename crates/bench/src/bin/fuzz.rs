//! Schedule-fuzzing campaigns (E19): PCT adversary + invariant oracles +
//! shrinking replayable counterexamples.
//!
//! ```text
//! fuzz [--cases N] [--budget N] [--depth D] [--seed S] [--jobs J]
//!      [--ns 3,4,5,6] [--smoke] [--inject-bug] [--out report.json]
//!      [--events events.jsonl] [--progress] [--telemetry-jsonl snap.jsonl]
//!      [--telemetry-cadence-ms N]
//! fuzz --replay artifact.json
//! fuzz --write-corpus corpus/
//! ```
//!
//! Exit status: `0` for a clean campaign (or, with `--inject-bug`, a
//! campaign that *caught* the injected bug and produced a shrunk replayable
//! artifact of at most 200 steps); `1` otherwise. `--replay` exits `0` iff
//! the artifact's recorded outcome reproduces.

use std::io::Write as _;

use fa_bench::{cli_flag, cli_jobs, cli_value, print_table, TelemetrySession};
use fa_fuzz::case::InjectedBug;
use fa_fuzz::{CampaignConfig, CampaignReport, CaseGen, ReproArtifact};
use fa_obs::{JsonlSink, NoProbe};

fn parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    match cli_value(name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} wants a number, got {v:?}")),
        None => default,
    }
}

fn parse_ns() -> Vec<usize> {
    match cli_value("--ns") {
        Some(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("--ns wants comma-separated sizes, got {v:?}"))
            })
            .collect(),
        None => vec![3, 4, 5, 6],
    }
}

fn replay(path: &str) -> i32 {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read artifact {path}: {e}"));
    let artifact = ReproArtifact::from_json(&json)
        .unwrap_or_else(|e| panic!("cannot parse artifact {path}: {e}"));
    let result = artifact.replay();
    println!(
        "replayed {} ({} scripted steps, {} executed)",
        artifact.label,
        artifact.script.steps.len(),
        result.steps
    );
    match &result.violation {
        Some(v) => println!("violation: {v}"),
        None => println!("no violation; end pattern {:?}", result.pattern),
    }
    if artifact.replay_confirms() {
        println!("artifact outcome CONFIRMED");
        0
    } else {
        println!("artifact outcome DID NOT reproduce");
        1
    }
}

fn write_corpus(dir: &str) -> i32 {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
    for (name, artifact) in [
        (
            "fig2_pathological.json",
            fa_fuzz::corpus::figure2_artifact(),
        ),
        (
            "e13_unseen_competitor.json",
            fa_fuzz::corpus::e13_artifact(),
        ),
    ] {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, artifact.to_json() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
    0
}

#[allow(clippy::cast_precision_loss)]
fn print_report(report: &CampaignReport) {
    let rows: Vec<Vec<String>> = report
        .per_algo
        .iter()
        .filter(|(_, t)| t.cases > 0)
        .map(|(kind, t)| {
            vec![
                kind.name().to_string(),
                t.cases.to_string(),
                t.violations.to_string(),
                t.total_steps.to_string(),
                t.distinct_patterns.to_string(),
            ]
        })
        .collect();
    print_table(&["algo", "cases", "violations", "steps", "patterns"], &rows);
    let secs = report.elapsed_ns as f64 / 1e9;
    println!(
        "{} cases, {} steps, {} violations, {} distinct patterns in {secs:.2}s ({:.0} cases/s)",
        report.cases,
        report.total_steps,
        report.violations.len(),
        report.distinct_patterns,
        report.cases as f64 / secs.max(1e-9),
    );
}

fn main() {
    if let Some(path) = cli_value("--replay") {
        std::process::exit(replay(&path));
    }
    if let Some(dir) = cli_value("--write-corpus") {
        std::process::exit(write_corpus(&dir));
    }

    let smoke = cli_flag("--smoke");
    let inject = cli_flag("--inject-bug");
    let cases = parse("--cases", if smoke { 300 } else { 10_000 });
    let budget = parse("--budget", 600);
    let seed = parse("--seed", 0xf0cc_5eed_u64);
    let ns = parse_ns();

    let mut gen = CaseGen::standard(ns, budget);
    if let Some(d) = cli_value("--depth") {
        let d: usize = d
            .parse()
            .unwrap_or_else(|_| panic!("--depth wants a number, got {d:?}"));
        gen.depths = vec![d];
    }
    if inject {
        // Fuzz only the algorithm carrying the injected bug, so the campaign
        // measures the driver's catch rate rather than diluting it.
        gen.inject = Some(InjectedBug::ConsensusNaiveRule);
        gen.algos = vec![fa_fuzz::AlgoKind::Consensus];
        gen.ns = vec![2, 3];
    }

    let campaign = if inject {
        "inject-naive-consensus".to_string()
    } else {
        "fuzz".to_string()
    };
    let telemetry = TelemetrySession::from_cli(&campaign);
    let config = CampaignConfig {
        campaign,
        cases,
        seed,
        jobs: cli_jobs(),
        gen,
        telemetry: telemetry.registry(),
    };
    let report = match cli_value("--events") {
        Some(path) => {
            let file =
                std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            let report = fa_fuzz::run_campaign(&config, &mut sink);
            sink.into_inner().flush().expect("flush events");
            report
        }
        None => fa_fuzz::run_campaign(&config, &mut NoProbe),
    };
    telemetry.finish();
    print_report(&report);

    if let Some(path) = cli_value("--out") {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("report written to {path}");
    }

    if inject {
        // Success = the campaign caught the bug and shrank it to a short,
        // replayable artifact.
        let Some(artifact) = &report.first_repro else {
            eprintln!("FAIL: injected bug was not caught");
            std::process::exit(1);
        };
        println!(
            "injected bug caught: case {} shrunk to {} steps ({})",
            report.violations[0],
            artifact.script.steps.len(),
            artifact.violation.as_deref().unwrap_or("?"),
        );
        if let Some(path) = cli_value("--artifact") {
            std::fs::write(&path, artifact.to_json() + "\n")
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("artifact written to {path}");
        }
        let ok = artifact.script.steps.len() <= 200 && artifact.replay_confirms();
        if !ok {
            eprintln!("FAIL: artifact too long or did not reproduce on replay");
        }
        std::process::exit(i32::from(!ok));
    }

    if report.violations.is_empty() {
        std::process::exit(0);
    }
    if let (Some(artifact), Some(path)) = (&report.first_repro, cli_value("--artifact")) {
        std::fs::write(&path, artifact.to_json() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("violation artifact written to {path}");
    }
    eprintln!("FAIL: {} violating cases", report.violations.len());
    std::process::exit(1);
}

//! E3 — Native replay of the paper's TLC check: the snapshot algorithm of
//! Figure 3 solves the snapshot task, exhaustively over all interleavings
//! and wirings for 2 processors, and for 3 processors up to a state cap.
//!
//! Flags:
//! * `--jobs N` — sweep worker threads (default: available parallelism);
//!   the reports are identical for any `N`, only wall-clock changes.
//! * `--strategy auto|serial|pool|intra[:N]` — sweep executor selection
//!   (default: `auto`, serial for one job and the worker pool otherwise);
//!   `intra` runs each combo's BFS on N shared-frontier workers (0 or
//!   omitted: core count). Reports are identical across strategies.
//! * `--smoke` — print only the deterministic report lines (no timing) for
//!   a reduced 2-proc fine + 3-proc coarse sweep; CI diffs this output
//!   across `--jobs` values to catch nondeterministic violation selection.
//! * `--n4` — additionally run the 4-processor coarse-scan sweep (E18):
//!   all 13824 wiring combinations, bounded per combination.
//! * `--progress` / `--telemetry-jsonl PATH` / `--telemetry-cadence-ms N` —
//!   live telemetry plane (stderr progress line, snapshot JSONL stream);
//!   stdout stays byte-identical with telemetry on or off.
//! * `--quotient` — symmetry-quotient the sweeps (orbit-canonical visited
//!   set + combo class representatives); verdicts are unchanged, report
//!   lines gain the quotient ledger.
//! * `--visited-budget SIZE` — spill cold visited shards to a checksummed
//!   disk tier past the budget (human-readable sizes: `64MiB`, `2GB`);
//!   reports are byte-identical to in-memory.
//! * `--checkpoint-dir DIR` / `--checkpoint-every SIZE` / `--resume` —
//!   crash-safe checkpointing: combo claims/outcomes are journaled under
//!   DIR (one subdirectory per sweep), fsynced every SIZE bytes (default
//!   64KiB), and `--resume` replays recorded outcomes instead of
//!   re-exploring. A killed run resumed any number of times produces a
//!   byte-identical report.
//! * `--memory-limit SIZE` — RSS watchdog: force-spill the visited tier at
//!   80%, checkpoint and abort gracefully at the limit.
//!
//! Exit codes: 0 clean, 2 finished-but-incomplete (budget/abort; resumable
//! when checkpointed), 3 violation found. SIGINT/SIGTERM request a graceful
//! stop: the current records are journaled, a final checkpoint is synced,
//! and the run exits 2.

use std::fs;
use std::io::Write as _;

use fa_bench::{
    check_config_from_cli, cli_flag, print_table, report_exit_code, signals, sweep_summary,
    TelemetrySession, EXIT_VIOLATION,
};
use fa_memory::Wiring;
use fa_modelcheck::checks::{
    check_snapshot_task_coarse_with, check_snapshot_task_with, check_snapshot_wait_freedom,
    TaskCheckReport,
};
use fa_modelcheck::CheckConfig;
use fa_obs::{JsonlSink, Probe, SweepEvent};

/// Several distinct sweeps run in one invocation; each gets its own journal
/// under a per-sweep subdirectory so `--resume` always meets a journal whose
/// fingerprint matches its sweep.
fn scoped(config: &CheckConfig, tag: &str) -> CheckConfig {
    let mut config = config.clone();
    if let Some(cp) = &mut config.checkpoint {
        cp.dir = cp.dir.join(tag);
    }
    config
}

fn report_line(r: &TaskCheckReport) -> String {
    let mut line = format!(
        "combos={}/{} states={} complete={} violation={}",
        r.combos,
        r.total_combos,
        r.total_states,
        r.complete,
        r.violation.clone().unwrap_or_else(|| "none".into())
    );
    // Quotiented runs append their ledger; plain output stays byte-stable.
    if let Some(q) = &r.quotient {
        line.push_str(&format!(
            " quotient: combos_explored={} canonical_states={} full_states_est={} orbit_factor={:.2} spilled={}",
            q.combos_explored,
            q.canonical_states,
            q.full_states_estimate,
            q.orbit_factor(),
            q.spilled_shards
        ));
    }
    line
}

/// The deterministic smoke check: report lines only, byte-identical across
/// `--jobs` values. Exits 0 unless a violation is found (the bounded n=3
/// sweep is legitimately incomplete, which CI treats as success here).
fn smoke(config: &CheckConfig) {
    let fine =
        check_snapshot_task_with(&[1, 2], 500_000, &scoped(config, "fine_n2")).expect("check runs");
    println!("smoke fine n=2: {}", report_line(&fine.report));
    let coarse = check_snapshot_task_coarse_with(&[1, 2, 3], 50_000, &scoped(config, "coarse_n3"))
        .expect("check runs");
    println!("smoke coarse n=3: {}", report_line(&coarse.report));
    assert!(
        fine.report.violation.is_none(),
        "{:?}",
        fine.report.violation
    );
    assert!(
        coarse.report.violation.is_none(),
        "{:?}",
        coarse.report.violation
    );
}

fn main() {
    let session = TelemetrySession::from_cli("check_snapshot");
    let mut config = check_config_from_cli();
    if let Some(registry) = session.registry() {
        config = config.with_telemetry(registry);
    }
    // Graceful shutdown: SIGINT/SIGTERM raise this flag; the sweep stops at
    // the next poll, journals nothing nondeterministic, and syncs a final
    // checkpoint, so `--resume` picks up where it left off.
    config = config.with_abort(signals::install_abort_handler());
    if cli_flag("--smoke") {
        smoke(&config);
        session.finish();
        return;
    }
    // Exit-code ledger over every sweep: violation (3) dominates incomplete
    // (2) dominates clean (0); severity and numeric order agree.
    let mut exit = 0i32;

    println!("== E3: model-checking the snapshot task (Figure 3) ==\n");
    let mut telemetry: Vec<SweepEvent> = Vec::new();
    let mut rows = Vec::new();

    for inputs in [vec![1u32, 2], vec![5, 5]] {
        let tag = format!("fine_{}_{}", inputs[0], inputs[1]);
        let outcome = check_snapshot_task_with(&inputs, 2_000_000, &scoped(&config, &tag))
            .expect("check runs");
        let report = &outcome.report;
        rows.push(vec![
            format!("{inputs:?}"),
            report.combos.to_string(),
            report.total_states.to_string(),
            report.complete.to_string(),
            report.violation.clone().unwrap_or_else(|| "none".into()),
        ]);
        exit = exit.max(report_exit_code(report));
        telemetry.push(outcome.telemetry);
    }

    print_table(
        &["inputs", "wiring combos", "states", "complete", "violation"],
        &rows,
    );

    // 3 processors at the paper's TLC granularity (whole scans atomic,
    // Figure 3's caption): sweep over all 36 wiring combinations, bounded
    // per combination (full exhaustion needs server-scale state storage, as
    // the authors' TLC run had).
    println!("\n== 3 processors, label granularity (the TLC configuration) ==\n");
    let inputs = vec![1u32, 2, 3];
    let outcome = check_snapshot_task_coarse_with(&inputs, 400_000, &scoped(&config, "coarse_n3"))
        .expect("check runs");
    println!("inputs {:?}: {}", inputs, report_line(&outcome.report));
    println!("{}", sweep_summary(&outcome.telemetry));
    exit = exit.max(report_exit_code(&outcome.report));
    telemetry.push(outcome.telemetry);

    // 3 processors at per-read granularity: bounded; no violation in the
    // explored prefix.
    println!("\n== 3 processors, per-read granularity (bounded) ==\n");
    let outcome = check_snapshot_task_with(&inputs, 250_000, &scoped(&config, "fine_n3"))
        .expect("check runs");
    println!("inputs {:?}: {}", inputs, report_line(&outcome.report));
    println!("{}", sweep_summary(&outcome.telemetry));
    exit = exit.max(report_exit_code(&outcome.report));
    telemetry.push(outcome.telemetry);

    if cli_flag("--n4") {
        // E18: the 4-processor coarse-scan sweep, opened up by the parallel
        // sweep engine: (4!)^3 = 13824 wiring combinations, bounded per
        // combination.
        println!("\n== E18: 4 processors, label granularity, all 13824 combos (bounded) ==\n");
        let inputs = vec![1u32, 2, 3, 4];
        let outcome =
            check_snapshot_task_coarse_with(&inputs, 2_000, &scoped(&config, "coarse_n4"))
                .expect("check runs");
        println!("inputs {:?}: {}", inputs, report_line(&outcome.report));
        println!("{}", sweep_summary(&outcome.telemetry));
        exit = exit.max(report_exit_code(&outcome.report));
        telemetry.push(outcome.telemetry);
    }

    println!("\n== wait-freedom certificate (solo termination from every reachable state) ==\n");
    let wirings = vec![Wiring::identity(2), Wiring::from_perm(vec![1, 0]).unwrap()];
    let wf = check_snapshot_wait_freedom(&[1, 2], wirings, 2_000_000, 200).expect("runs");
    println!(
        "n=2: states={} complete={} violation={}",
        wf.total_states,
        wf.complete,
        wf.violation.clone().unwrap_or_else(|| "none".into())
    );
    if wf.violation.is_some() {
        exit = exit.max(EXIT_VIOLATION);
    }

    // Persist the sweep telemetry through the probe layer.
    let mut sink = JsonlSink::new(Vec::new());
    for ev in &telemetry {
        sink.on_sweep(ev);
    }
    fs::create_dir_all("results").expect("create results dir");
    let mut f =
        fs::File::create("results/check_snapshot_telemetry.jsonl").expect("create telemetry file");
    f.write_all(&sink.into_inner()).expect("write telemetry");
    println!(
        "\nwrote results/check_snapshot_telemetry.jsonl ({} sweeps)",
        telemetry.len()
    );
    session.finish();
    // 0 clean / 2 incomplete / 3 violation — after the telemetry stream is
    // flushed, since process::exit runs no destructors.
    std::process::exit(exit);
}

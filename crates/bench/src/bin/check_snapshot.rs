//! E3 — Native replay of the paper's TLC check: the snapshot algorithm of
//! Figure 3 solves the snapshot task, exhaustively over all interleavings
//! and wirings for 2 processors, and for 3 processors up to a state cap.
//!
//! Flags:
//! * `--jobs N` — sweep worker threads (default: available parallelism);
//!   the reports are identical for any `N`, only wall-clock changes.
//! * `--strategy auto|serial|pool` — sweep executor selection (default:
//!   `auto`, serial for one job and the worker pool otherwise); reports are
//!   identical across strategies.
//! * `--smoke` — print only the deterministic report lines (no timing) for
//!   a reduced 2-proc fine + 3-proc coarse sweep; CI diffs this output
//!   across `--jobs` values to catch nondeterministic violation selection.
//! * `--n4` — additionally run the 4-processor coarse-scan sweep (E18):
//!   all 13824 wiring combinations, bounded per combination.
//! * `--progress` / `--telemetry-jsonl PATH` / `--telemetry-cadence-ms N` —
//!   live telemetry plane (stderr progress line, snapshot JSONL stream);
//!   stdout stays byte-identical with telemetry on or off.
//! * `--quotient` — symmetry-quotient the sweeps (orbit-canonical visited
//!   set + combo class representatives); verdicts are unchanged, report
//!   lines gain the quotient ledger.
//! * `--visited-budget BYTES` — spill cold visited shards to a checksummed
//!   disk tier past the budget; reports are byte-identical to in-memory.

use std::fs;
use std::io::Write as _;

use fa_bench::{check_config_from_cli, cli_flag, print_table, sweep_summary, TelemetrySession};
use fa_memory::Wiring;
use fa_modelcheck::checks::{
    check_snapshot_task_coarse_with, check_snapshot_task_with, check_snapshot_wait_freedom,
    TaskCheckReport,
};
use fa_obs::{JsonlSink, Probe, SweepEvent};

fn report_line(r: &TaskCheckReport) -> String {
    let mut line = format!(
        "combos={}/{} states={} complete={} violation={}",
        r.combos,
        r.total_combos,
        r.total_states,
        r.complete,
        r.violation.clone().unwrap_or_else(|| "none".into())
    );
    // Quotiented runs append their ledger; plain output stays byte-stable.
    if let Some(q) = &r.quotient {
        line.push_str(&format!(
            " quotient: combos_explored={} canonical_states={} full_states_est={} orbit_factor={:.2} spilled={}",
            q.combos_explored,
            q.canonical_states,
            q.full_states_estimate,
            q.orbit_factor(),
            q.spilled_shards
        ));
    }
    line
}

/// The deterministic smoke check: report lines only, byte-identical across
/// `--jobs` values.
fn smoke(config: &fa_modelcheck::CheckConfig) {
    let fine = check_snapshot_task_with(&[1, 2], 500_000, config).expect("check runs");
    println!("smoke fine n=2: {}", report_line(&fine.report));
    let coarse = check_snapshot_task_coarse_with(&[1, 2, 3], 50_000, config).expect("check runs");
    println!("smoke coarse n=3: {}", report_line(&coarse.report));
    assert!(
        fine.report.violation.is_none(),
        "{:?}",
        fine.report.violation
    );
    assert!(
        coarse.report.violation.is_none(),
        "{:?}",
        coarse.report.violation
    );
}

fn main() {
    let session = TelemetrySession::from_cli("check_snapshot");
    let mut config = check_config_from_cli();
    if let Some(registry) = session.registry() {
        config = config.with_telemetry(registry);
    }
    if cli_flag("--smoke") {
        smoke(&config);
        session.finish();
        return;
    }

    println!("== E3: model-checking the snapshot task (Figure 3) ==\n");
    let mut telemetry: Vec<SweepEvent> = Vec::new();
    let mut rows = Vec::new();

    for inputs in [vec![1u32, 2], vec![5, 5]] {
        let outcome = check_snapshot_task_with(&inputs, 2_000_000, &config).expect("check runs");
        let report = &outcome.report;
        rows.push(vec![
            format!("{inputs:?}"),
            report.combos.to_string(),
            report.total_states.to_string(),
            report.complete.to_string(),
            report.violation.clone().unwrap_or_else(|| "none".into()),
        ]);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        telemetry.push(outcome.telemetry);
    }

    print_table(
        &["inputs", "wiring combos", "states", "complete", "violation"],
        &rows,
    );

    // 3 processors at the paper's TLC granularity (whole scans atomic,
    // Figure 3's caption): sweep over all 36 wiring combinations, bounded
    // per combination (full exhaustion needs server-scale state storage, as
    // the authors' TLC run had).
    println!("\n== 3 processors, label granularity (the TLC configuration) ==\n");
    let inputs = vec![1u32, 2, 3];
    let outcome = check_snapshot_task_coarse_with(&inputs, 400_000, &config).expect("check runs");
    println!("inputs {:?}: {}", inputs, report_line(&outcome.report));
    println!("{}", sweep_summary(&outcome.telemetry));
    assert!(
        outcome.report.violation.is_none(),
        "{:?}",
        outcome.report.violation
    );
    telemetry.push(outcome.telemetry);

    // 3 processors at per-read granularity: bounded; no violation in the
    // explored prefix.
    println!("\n== 3 processors, per-read granularity (bounded) ==\n");
    let outcome = check_snapshot_task_with(&inputs, 250_000, &config).expect("check runs");
    println!("inputs {:?}: {}", inputs, report_line(&outcome.report));
    println!("{}", sweep_summary(&outcome.telemetry));
    assert!(
        outcome.report.violation.is_none(),
        "{:?}",
        outcome.report.violation
    );
    telemetry.push(outcome.telemetry);

    if cli_flag("--n4") {
        // E18: the 4-processor coarse-scan sweep, opened up by the parallel
        // sweep engine: (4!)^3 = 13824 wiring combinations, bounded per
        // combination.
        println!("\n== E18: 4 processors, label granularity, all 13824 combos (bounded) ==\n");
        let inputs = vec![1u32, 2, 3, 4];
        let outcome = check_snapshot_task_coarse_with(&inputs, 2_000, &config).expect("check runs");
        println!("inputs {:?}: {}", inputs, report_line(&outcome.report));
        println!("{}", sweep_summary(&outcome.telemetry));
        assert!(
            outcome.report.violation.is_none(),
            "{:?}",
            outcome.report.violation
        );
        telemetry.push(outcome.telemetry);
    }

    println!("\n== wait-freedom certificate (solo termination from every reachable state) ==\n");
    let wirings = vec![Wiring::identity(2), Wiring::from_perm(vec![1, 0]).unwrap()];
    let wf = check_snapshot_wait_freedom(&[1, 2], wirings, 2_000_000, 200).expect("runs");
    println!(
        "n=2: states={} complete={} violation={}",
        wf.total_states,
        wf.complete,
        wf.violation.clone().unwrap_or_else(|| "none".into())
    );
    assert!(wf.violation.is_none());

    // Persist the sweep telemetry through the probe layer.
    let mut sink = JsonlSink::new(Vec::new());
    for ev in &telemetry {
        sink.on_sweep(ev);
    }
    fs::create_dir_all("results").expect("create results dir");
    let mut f =
        fs::File::create("results/check_snapshot_telemetry.jsonl").expect("create telemetry file");
    f.write_all(&sink.into_inner()).expect("write telemetry");
    println!(
        "\nwrote results/check_snapshot_telemetry.jsonl ({} sweeps)",
        telemetry.len()
    );
    session.finish();
}

//! E3 — Native replay of the paper's TLC check: the snapshot algorithm of
//! Figure 3 solves the snapshot task, exhaustively over all interleavings
//! and wirings for 2 processors, and for 3 processors up to a state cap.

use fa_bench::print_table;
use fa_memory::Wiring;
use fa_modelcheck::checks::{
    check_snapshot_task, check_snapshot_task_coarse, check_snapshot_wait_freedom,
};

fn main() {
    println!("== E3: model-checking the snapshot task (Figure 3) ==\n");
    let mut rows = Vec::new();

    for inputs in [vec![1u32, 2], vec![5, 5]] {
        let report = check_snapshot_task(&inputs, 2_000_000).expect("check runs");
        rows.push(vec![
            format!("{inputs:?}"),
            report.combos.to_string(),
            report.total_states.to_string(),
            report.complete.to_string(),
            report.violation.clone().unwrap_or_else(|| "none".into()),
        ]);
        assert!(report.violation.is_none(), "{:?}", report.violation);
    }

    print_table(
        &["inputs", "wiring combos", "states", "complete", "violation"],
        &rows,
    );

    // 3 processors at the paper's TLC granularity (whole scans atomic,
    // Figure 3's caption): sweep over all 36 wiring combinations, bounded
    // per combination (full exhaustion needs server-scale state storage, as
    // the authors' TLC run had).
    println!("\n== 3 processors, label granularity (the TLC configuration) ==\n");
    let inputs = vec![1u32, 2, 3];
    let report = check_snapshot_task_coarse(&inputs, 400_000).expect("check runs");
    println!(
        "inputs {:?}: combos={} states={} complete={} violation={}",
        inputs,
        report.combos,
        report.total_states,
        report.complete,
        report.violation.clone().unwrap_or_else(|| "none".into())
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);

    // 3 processors at per-read granularity: bounded; no violation in the
    // explored prefix.
    println!("\n== 3 processors, per-read granularity (bounded) ==\n");
    let report = check_snapshot_task(&inputs, 250_000).expect("check runs");
    println!(
        "inputs {:?}: combos={} states={} complete={} violation={}",
        inputs,
        report.combos,
        report.total_states,
        report.complete,
        report.violation.clone().unwrap_or_else(|| "none".into())
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);

    println!("\n== wait-freedom certificate (solo termination from every reachable state) ==\n");
    let wirings = vec![Wiring::identity(2), Wiring::from_perm(vec![1, 0]).unwrap()];
    let wf = check_snapshot_wait_freedom(&[1, 2], wirings, 2_000_000, 200).expect("runs");
    println!(
        "n=2: states={} complete={} violation={}",
        wf.total_states,
        wf.complete,
        wf.violation.clone().unwrap_or_else(|| "none".into())
    );
    assert!(wf.violation.is_none());
}

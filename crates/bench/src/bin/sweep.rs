//! Machine-readable experiment sweep: runs the cheap experiments (E1, E2,
//! E4, E6, E7, E8) and emits one JSON document with all observations —
//! the data behind EXPERIMENTS.md, regenerable in one command.
//!
//! Usage: `cargo run --release -p fa-bench --bin sweep > results.json`
//!
//! Honors the shared sweep flags (`--jobs`, `--strategy auto|serial|pool|
//! intra[:N]`, `--quotient`, `--visited-budget`,
//! `--checkpoint-dir`/`--checkpoint-every`/`--resume`, `--memory-limit`).
//! Exit codes: 0 clean, 2 the E3 model check finished incomplete (budget or
//! SIGINT/SIGTERM abort; resumable when checkpointed), 3 violation found.

use fa_bench::{
    check_config_from_cli, group_inputs, report_exit_code, signals, snapshot_step_stats,
};
use fa_core::figure2::{expected_rows, run_figure2};
use fa_core::lower_bound::covering_demo;
use fa_core::pathology::generalized_report;
use fa_core::runner::{run_consensus_random, run_renaming_random, WiringMode};
use fa_modelcheck::checks::check_snapshot_task_with;
use serde_json::json;

fn main() {
    let mut doc = serde_json::Map::new();

    // E1: Figure 2 row match.
    let fig2_match = run_figure2()
        .map(|obs| {
            obs.iter()
                .zip(expected_rows())
                .all(|(o, e)| o.registers == e.registers && o.views == e.views)
        })
        .unwrap_or(false);
    doc.insert("e1_figure2_rows_match".into(), json!(fig2_match));

    // E2: generalized pathology across register counts.
    let e2: Vec<_> = (3..=8usize)
        .map(|m| {
            let r = generalized_report(m, 500).expect("stabilizes");
            json!({
                "registers": m,
                "stable_views": r.graph.vertices().len(),
                "unique_source": r.graph.has_unique_source(),
                "period_cycles": r.period,
            })
        })
        .collect();
    doc.insert("e2_generalized_pathology".into(), json!(e2));

    // E3: parallel wiring-sweep model check of the snapshot task (honors
    // --jobs); the report fields are deterministic, the telemetry is not.
    let session = fa_bench::TelemetrySession::from_cli("sweep");
    let mut config = check_config_from_cli();
    if let Some(registry) = session.registry() {
        config = config.with_telemetry(registry);
    }
    // SIGINT/SIGTERM stop the sweep gracefully: the journal (if any) gets a
    // final sync and the process exits 2 instead of dying mid-write.
    config = config.with_abort(signals::install_abort_handler());
    let e3 = check_snapshot_task_with(&[1, 2], 500_000, &config).expect("check runs");
    let t = &e3.telemetry;
    let mut e3_doc = json!({
        "jobs": t.jobs,
        "combos_attempted": t.combos_attempted,
        "combos_total": t.combos_total,
        "states": t.states,
        "peak_combo_states": t.peak_combo_states,
        "complete": e3.report.complete,
        "violation": e3.report.violation,
        "elapsed_ns": t.elapsed_ns,
        "combos_per_sec": t.combos_per_sec(),
        "states_per_sec": t.states_per_sec(),
    });
    // Quotiented runs (--quotient) add their ledger; the plain document's
    // key set is unchanged, so committed artifacts stay diffable.
    if let (Some(q), serde_json::Value::Object(m)) = (&e3.report.quotient, &mut e3_doc) {
        m.insert(
            "quotient".into(),
            json!({
                "combos_explored": q.combos_explored,
                "canonical_states": q.canonical_states,
                "full_states_estimate": q.full_states_estimate,
                "orbit_factor": q.orbit_factor(),
                "spilled_shards": q.spilled_shards,
            }),
        );
    }
    doc.insert("e3_snapshot_model_check".into(), e3_doc);

    // E4: snapshot step stats.
    let e4: Vec<_> = (2..=10usize)
        .map(|n| {
            let s = snapshot_step_stats(n, 0..30).expect("terminates");
            json!({"n": n, "runs": s.runs, "mean": s.mean, "min": s.min, "max": s.max})
        })
        .collect();
    doc.insert("e4_snapshot_steps".into(), json!(e4));

    // E6: renaming max names per group count.
    let e6: Vec<_> = (2..=6usize)
        .map(|n| {
            let mut max_name = 0usize;
            let mut max_groups = 0usize;
            for t in 0..20u64 {
                let inputs = group_inputs(n, 3.min(n), (n as u64) << 8 | t);
                let names = run_renaming_random(&inputs, t, &WiringMode::Random, 100_000_000)
                    .expect("terminates");
                let groups: std::collections::BTreeSet<u32> = inputs.iter().copied().collect();
                max_groups = max_groups.max(groups.len());
                max_name = max_name.max(names.into_iter().max().unwrap_or(0));
            }
            json!({"n": n, "max_groups": max_groups, "max_name": max_name,
                   "bound": max_groups * (max_groups + 1) / 2})
        })
        .collect();
    doc.insert("e6_renaming".into(), json!(e6));

    // E7: consensus agreement rate.
    let mut agreements = 0usize;
    let trials = 30usize;
    for seed in 0..trials as u64 {
        let res = run_consensus_random(&[3, 1, 2], seed, &WiringMode::Random, 120_000, 50_000_000)
            .expect("run");
        let d = res.decisions[0];
        if res.all_decided && res.decisions.iter().all(|x| *x == d) {
            agreements += 1;
        }
    }
    doc.insert(
        "e7_consensus_agreement".into(),
        json!({"trials": trials, "agreed": agreements}),
    );

    // E8: covering lower bound.
    let e8: Vec<_> = (2..=8usize)
        .map(|n| {
            let r = covering_demo(n).expect("runs");
            json!({"n": n, "erased": r.erased, "indistinguishable": r.indistinguishable_to_q})
        })
        .collect();
    doc.insert("e8_lower_bound".into(), json!(e8));

    let exit = report_exit_code(&e3.report);
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("json")
    );
    session.finish();
    // 0 clean / 2 incomplete / 3 violation, after the document is out.
    std::process::exit(exit);
}

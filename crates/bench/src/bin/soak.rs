//! Soak test: long randomized campaign over all algorithms, checking task
//! invariants on every run. Exits nonzero on the first violation.
//!
//! Usage: `cargo run --release -p fa-bench --bin soak [minutes]`

use std::time::{Duration, Instant};

use fa_bench::group_inputs;
use fa_core::runner::{
    run_consensus_random, run_renaming_random, run_snapshot_random, SnapshotRunConfig, WiringMode,
};

fn main() {
    let minutes: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let deadline = Instant::now() + Duration::from_secs(minutes * 60);
    let mut runs = 0u64;
    let mut seed = 0u64;
    println!("soaking for {minutes} minute(s)…");
    while Instant::now() < deadline {
        seed += 1;
        let n = 2 + (seed as usize % 6);
        // Snapshot with random group structure.
        let inputs = group_inputs(n, 1 + (seed as usize % n), seed);
        let cfg = SnapshotRunConfig::new(inputs.clone()).with_seed(seed);
        let res = run_snapshot_random(&cfg).expect("snapshot terminates");
        for (i, v) in res.views.iter().enumerate() {
            assert!(v.contains(&inputs[i]), "seed {seed}: missing self");
            for w in &res.views {
                assert!(
                    v.comparable(w),
                    "seed {seed}: incomparable snapshot outputs"
                );
            }
        }
        // Renaming.
        let names = run_renaming_random(&inputs, seed, &WiringMode::Random, 200_000_000)
            .expect("renaming terminates");
        let groups: std::collections::BTreeSet<u32> = inputs.iter().copied().collect();
        let bound = groups.len() * (groups.len() + 1) / 2;
        for (i, &a) in names.iter().enumerate() {
            assert!(
                (1..=bound).contains(&a),
                "seed {seed}: name {a} out of range"
            );
            for (j, &b) in names.iter().enumerate() {
                assert!(
                    i == j || inputs[i] == inputs[j] || a != b,
                    "seed {seed}: cross-group collision"
                );
            }
        }
        // Consensus (with solo tail to force termination).
        let res = run_consensus_random(&inputs, seed, &WiringMode::Random, 40_000, 50_000_000)
            .expect("consensus run");
        assert!(res.all_decided, "seed {seed}: solo tail must decide");
        let d = res.decisions[0].unwrap();
        assert!(
            res.decisions.iter().all(|x| x.unwrap() == d),
            "seed {seed}: disagreement"
        );
        assert!(inputs.contains(&d), "seed {seed}: invalid decision");
        runs += 1;
        if runs % 50 == 0 {
            println!("  {runs} campaign rounds, last n={n}");
        }
    }
    println!("soak complete: {runs} rounds, no violations");
}

//! E7 — Obstruction-free consensus: agreement and validity always hold;
//! termination holds whenever contention subsides (solo tail), and solo runs
//! decide in a constant number of snapshot rounds.
//!
//! Honors the shared sweep flags (`--jobs`, `--strategy auto|serial|pool|
//! intra[:N]`, `--quotient`, `--visited-budget`,
//! `--checkpoint-dir`/`--checkpoint-every`/`--resume`, `--memory-limit`).
//! Exit codes: 0 clean, 2 incomplete (the safety check is depth-bounded by
//! design — the timestamp space is unbounded — so this is the expected code
//! for a healthy run), 3 violation found.

use fa_bench::{check_config_from_cli, print_table, report_exit_code, signals, sweep_summary};
use fa_core::runner::{run_consensus_random, WiringMode};
use fa_core::{ConsensusProcess, SnapRegister};
use fa_memory::{Executor, ProcId, SharedMemory, Wiring};
use fa_modelcheck::checks::check_consensus_safety_with;

fn main() {
    println!("== E7: obstruction-free consensus (Figure 5) ==\n");

    // Part 1: agreement/validity under contention + solo tail.
    let mut rows = Vec::new();
    for n in 2..=6usize {
        let trials = 30;
        let mut agreed = 0usize;
        let mut decided_in_contention = 0usize;
        for seed in 0..trials {
            let inputs: Vec<u32> = (0..n as u32).map(|i| 10 * (i + 1)).collect();
            let res = run_consensus_random(
                &inputs,
                seed as u64,
                &WiringMode::Random,
                60_000 * n,
                10_000_000,
            )
            .expect("consensus run");
            assert!(res.all_decided, "solo tail must force a decision");
            let d0 = res.decisions[0].expect("decided");
            let all_same = res.decisions.iter().all(|d| d.unwrap() == d0);
            assert!(all_same, "agreement violated at n={n} seed={seed}");
            assert!(
                inputs.contains(&d0),
                "validity violated at n={n} seed={seed}"
            );
            agreed += usize::from(all_same);
            // Did the random phase alone decide?
            if res.total_steps < 60_000 * n {
                decided_in_contention += 1;
            }
        }
        rows.push(vec![
            n.to_string(),
            trials.to_string(),
            agreed.to_string(),
            decided_in_contention.to_string(),
        ]);
    }
    print_table(
        &[
            "n",
            "trials",
            "agreement+validity",
            "decided before solo tail",
        ],
        &rows,
    );

    // Part 2: obstruction-freedom — solo runner decides in few rounds.
    println!("\nsolo termination (obstruction-freedom):");
    let mut rows = Vec::new();
    for n in 2..=6usize {
        let inputs: Vec<u32> = (0..n as u32).collect();
        let procs: Vec<ConsensusProcess<u32>> = inputs
            .iter()
            .map(|&x| ConsensusProcess::new(x, n))
            .collect();
        let memory = SharedMemory::new(n, SnapRegister::default(), vec![Wiring::identity(n); n])
            .expect("memory");
        let mut exec = Executor::new(procs, memory).expect("executor");
        exec.run_solo(ProcId(0), 50_000_000).expect("solo run");
        assert!(exec.is_halted(ProcId(0)));
        let rounds = exec.process(ProcId(0)).rounds();
        rows.push(vec![
            n.to_string(),
            exec.first_output(ProcId(0)).copied().unwrap().to_string(),
            rounds.to_string(),
            exec.steps_taken(ProcId(0)).to_string(),
        ]);
    }
    print_table(&["n", "decision", "snapshot rounds", "steps"], &rows);
    println!("\nA solo processor decides its own value within a constant number of");
    println!("long-lived-snapshot rounds (its timestamp leads by 2 after ~1 re-invocation).");

    // Part 3: exhaustive safety check (agreement + validity) over every
    // interleaving and wiring combination, bounded in depth because the
    // timestamp space is unbounded. Honors --jobs.
    println!("\n== exhaustive safety model check, bounded depth (n=2) ==\n");
    let session = fa_bench::TelemetrySession::from_cli("consensus_of");
    let mut config = check_config_from_cli();
    if let Some(registry) = session.registry() {
        config = config.with_telemetry(registry);
    }
    config = config.with_abort(signals::install_abort_handler());
    let outcome = check_consensus_safety_with(&[1, 2], 600_000, 200, &config).expect("check runs");
    let report = &outcome.report;
    println!(
        "combos={}/{} states={} depth-bounded-complete={} violation={}",
        report.combos,
        report.total_combos,
        report.total_states,
        report.complete,
        report.violation.clone().unwrap_or_else(|| "none".into())
    );
    println!("{}", sweep_summary(&outcome.telemetry));
    assert!(report.violation.is_none(), "{:?}", report.violation);
    session.finish();
    // The depth bound makes `complete: false` the healthy outcome here; the
    // exit code still reports it honestly so harnesses can tell the three
    // cases apart.
    std::process::exit(report_exit_code(report));
}

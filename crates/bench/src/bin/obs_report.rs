//! Unified observability report (E17) — see [`fa_bench::obs_report`].

fn main() {
    fa_bench::obs_report::run_report(fa_bench::cli_jobs());
}

//! Chaos campaign (E20): fault-injection runs of the paper's algorithms on
//! real OS threads, via `fa_memory::chaos`.
//!
//! Four scenarios, each repeated over fixed seeds:
//!
//! * **snapshot_crash** — the acceptance scenario: `n = 6` snapshot
//!   processors with random wirings, ⌈n/2⌉ = 3 crashed (two crash-stop, one
//!   *poised* mid-write — a real covering). Every survivor must produce a
//!   valid view (contains its own input, pairwise comparable), and the run
//!   must return with per-processor outcomes — zero hangs.
//! * **renaming_chaos** — `n = 5` renaming under a poised crash, a
//!   crash-stop, and a stall; surviving names must be distinct and within
//!   the `M(M+1)/2` bound.
//! * **consensus_backoff** — `n = 4` consensus with a [`BackoffArbiter`]
//!   attached to every processor, under an injected stall storm; all
//!   processors must still decide the same value, with attempt/backoff
//!   telemetry captured from the arbiters' shared stats.
//! * **panic_containment** — an injected `Process::step` panic plus a
//!   crash-stop; the panic must be recorded as an outcome, never propagate.
//!
//! Artifacts: `results/chaos_report.json` (scenario table, outcomes, checks,
//! telemetry) and `results/chaos_events.jsonl` (every chaos/backoff probe
//! event). `--smoke` runs one seed per scenario for CI.

use std::fs;
use std::io::Write as _;
use std::time::{Duration, Instant};

use crate::print_table;
use fa_core::{BackoffArbiter, ConsensusProcess, RenamingProcess, SnapRegister, SnapshotProcess};
use fa_memory::chaos::{run_chaos_probed, ChaosConfig, FaultPlan};
use fa_memory::threaded::ProcOutcome;
use fa_memory::Wiring;
use fa_obs::{BackoffEvent, ChaosEvent, JsonlSink, Probe, ReadEvent, WriteEvent};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize as _;
use serde_json::{Map, Value};

/// Step budget for every scenario (wall-clock deadlines are the real bound).
const MAX_STEPS: usize = 10_000_000;

/// A lean per-thread probe: operation counters plus the chaos event stream.
#[derive(Debug, Default)]
struct CampaignProbe {
    reads: u64,
    writes: u64,
    chaos: Vec<ChaosEvent>,
}

impl Probe for CampaignProbe {
    fn on_read(&mut self, _event: &ReadEvent) {
        self.reads += 1;
    }
    fn on_write(&mut self, _event: &WriteEvent) {
        self.writes += 1;
    }
    fn on_chaos(&mut self, event: &ChaosEvent) {
        self.chaos.push(event.clone());
    }
}

/// One scenario run's record: what was injected, how every processor ended,
/// and whether the scenario's invariant checks passed.
struct ScenarioResult {
    scenario: &'static str,
    n: usize,
    seed: u64,
    outcomes: Vec<ProcOutcome>,
    reads: u64,
    writes: u64,
    chaos_events: Vec<ChaosEvent>,
    backoff_events: Vec<BackoffEvent>,
    checks_passed: bool,
    detail: String,
    elapsed_ms: u64,
}

fn outcome_label(o: &ProcOutcome) -> String {
    match o {
        ProcOutcome::Completed => "ok".into(),
        ProcOutcome::BudgetExhausted => "budget".into(),
        ProcOutcome::Crashed {
            after_ops,
            covering: None,
        } => format!("crash@{after_ops}"),
        ProcOutcome::Crashed {
            after_ops,
            covering: Some(r),
        } => format!("poised@{after_ops}->r{r}"),
        ProcOutcome::Panicked { .. } => "panic".into(),
        ProcOutcome::Stalled => "stalled".into(),
        ProcOutcome::DeadlineExceeded => "deadline".into(),
    }
}

fn random_wirings(n: usize, seed: u64) -> Vec<Wiring> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4a0_5c4a_0000_0000);
    (0..n).map(|_| Wiring::random(n, &mut rng)).collect()
}

#[allow(clippy::too_many_arguments)]
fn gather<F>(
    scenario: &'static str,
    n: usize,
    seed: u64,
    started: Instant,
    outcomes: Vec<ProcOutcome>,
    probes: Vec<Option<CampaignProbe>>,
    backoff_events: Vec<BackoffEvent>,
    check: F,
) -> ScenarioResult
where
    F: FnOnce() -> (bool, String),
{
    let (reads, writes, chaos_events) =
        probes
            .into_iter()
            .flatten()
            .fold((0u64, 0u64, Vec::new()), |(r, w, mut evs), p| {
                evs.extend(p.chaos);
                (r + p.reads, w + p.writes, evs)
            });
    let (checks_passed, detail) = check();
    ScenarioResult {
        scenario,
        n,
        seed,
        outcomes,
        reads,
        writes,
        chaos_events,
        backoff_events,
        checks_passed,
        detail,
        elapsed_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
    }
}

/// The acceptance scenario: crash ⌈n/2⌉ of `n = 6` snapshot processors (one
/// poised mid-write) and require every survivor to output a valid view.
fn snapshot_crash_scenario(seed: u64, config: &ChaosConfig) -> ScenarioResult {
    let started = Instant::now();
    let n = 6;
    let inputs: Vec<u32> = (0..n as u32).collect();
    let procs: Vec<SnapshotProcess<u32>> =
        inputs.iter().map(|&x| SnapshotProcess::new(x, n)).collect();
    let plan = FaultPlan::new(n)
        .crash_stop(1, 3)
        .crash_stop(3, 0)
        .crash_poised(5, 2);
    let (report, probes) = run_chaos_probed(
        procs,
        random_wirings(n, seed),
        n,
        SnapRegister::default(),
        &plan,
        config,
        |_| CampaignProbe::default(),
    )
    .expect("valid chaos config");

    let survivors = [0usize, 2, 4];
    let outcomes = report.outcomes.clone();
    gather(
        "snapshot_crash",
        n,
        seed,
        started,
        outcomes,
        probes,
        Vec::new(),
        || {
            let mut ok = true;
            let mut notes = Vec::new();
            for &s in &survivors {
                if !report.outcomes[s].is_completed() || report.outputs[s].len() != 1 {
                    ok = false;
                    notes.push(format!("p{s} did not complete with one view"));
                    continue;
                }
                if !report.outputs[s][0].contains(&inputs[s]) {
                    ok = false;
                    notes.push(format!("p{s} view misses own input"));
                }
            }
            for &a in &survivors {
                for &b in &survivors {
                    if report.outputs[a].len() == 1
                        && report.outputs[b].len() == 1
                        && !report.outputs[a][0].comparable(&report.outputs[b][0])
                    {
                        ok = false;
                        notes.push(format!("views of p{a} and p{b} incomparable"));
                    }
                }
            }
            let crashed = report.outcomes.iter().filter(|o| o.is_crashed()).count();
            if crashed != 3 {
                ok = false;
                notes.push(format!("expected 3 crashes, saw {crashed}"));
            }
            if report.covered_registers().len() != 1 {
                ok = false;
                notes.push("expected exactly one covered register".into());
            }
            if notes.is_empty() {
                notes.push(format!(
                    "3 survivors valid+comparable, covering r{}",
                    report.covered_registers()[0]
                ));
            }
            (ok, notes.join("; "))
        },
    )
}

/// Renaming under mixed faults: surviving names distinct and within the
/// `M(M+1)/2` bound of Section 6.
fn renaming_chaos_scenario(seed: u64, config: &ChaosConfig) -> ScenarioResult {
    let started = Instant::now();
    let n = 5;
    let bound = n * (n + 1) / 2;
    let procs: Vec<RenamingProcess<u32>> =
        (0..n as u32).map(|x| RenamingProcess::new(x, n)).collect();
    let plan = FaultPlan::new(n)
        .crash_poised(0, 1)
        .crash_stop(2, 4)
        .stall_once(3, 5, Duration::from_millis(1));
    let (report, probes) = run_chaos_probed(
        procs,
        random_wirings(n, seed.wrapping_add(1000)),
        n,
        SnapRegister::default(),
        &plan,
        config,
        |_| CampaignProbe::default(),
    )
    .expect("valid chaos config");

    let outcomes = report.outcomes.clone();
    gather(
        "renaming_chaos",
        n,
        seed,
        started,
        outcomes,
        probes,
        Vec::new(),
        || {
            let mut ok = true;
            let mut notes = Vec::new();
            let mut names = Vec::new();
            for (i, o) in report.outcomes.iter().enumerate() {
                if o.is_crashed() {
                    continue;
                }
                if !o.is_completed() || report.outputs[i].len() != 1 {
                    ok = false;
                    notes.push(format!("survivor p{i} did not complete with one name"));
                    continue;
                }
                names.push(report.outputs[i][0]);
            }
            for &name in &names {
                if !(1..=bound).contains(&name) {
                    ok = false;
                    notes.push(format!("name {name} outside 1..={bound}"));
                }
            }
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != names.len() {
                ok = false;
                notes.push(format!("duplicate names: {names:?}"));
            }
            if notes.is_empty() {
                notes.push(format!("names {names:?} distinct within 1..={bound}"));
            }
            (ok, notes.join("; "))
        },
    )
}

/// Consensus with per-processor backoff arbiters under a stall storm: all
/// processors must still decide one common value.
fn consensus_backoff_scenario(seed: u64, config: &ChaosConfig) -> ScenarioResult {
    let started = Instant::now();
    let n = 4;
    let inputs: Vec<u32> = vec![10, 20, 30, 40];
    let procs: Vec<ConsensusProcess<u32>> = inputs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            ConsensusProcess::new(x, n).with_backoff(BackoffArbiter::new(
                seed.wrapping_mul(31).wrapping_add(i as u64),
                Duration::from_micros(20),
                Duration::from_millis(5),
            ))
        })
        .collect();
    let stats: Vec<_> = procs
        .iter()
        .map(|p| p.backoff_stats().expect("arbiter attached"))
        .collect();
    // A stall storm on half the processors: repeated simulated preemptions
    // between shared-memory operations.
    let plan = FaultPlan::new(n)
        .stall_every(1, 3, Duration::from_micros(200))
        .stall_every(2, 4, Duration::from_micros(150));
    let (report, probes) = run_chaos_probed(
        procs,
        random_wirings(n, seed.wrapping_add(2000)),
        n,
        SnapRegister::default(),
        &plan,
        config,
        |_| CampaignProbe::default(),
    )
    .expect("valid chaos config");

    let backoff_events: Vec<BackoffEvent> = stats
        .iter()
        .enumerate()
        .map(|(i, s)| s.event_for(i))
        .collect();
    let outcomes = report.outcomes.clone();
    gather(
        "consensus_backoff",
        n,
        seed,
        started,
        outcomes,
        probes,
        backoff_events,
        || {
            let mut ok = true;
            let mut notes = Vec::new();
            let decisions: Vec<u32> = report
                .outputs
                .iter()
                .filter_map(|os| os.first().copied())
                .collect();
            if !report.all_completed() {
                ok = false;
                notes.push(format!("not all decided: {:?}", report.outcomes));
            }
            if decisions.is_empty() {
                ok = false;
                notes.push("no processor decided".into());
            } else {
                if !decisions.windows(2).all(|w| w[0] == w[1]) {
                    ok = false;
                    notes.push(format!("disagreement: {decisions:?}"));
                }
                if !inputs.contains(&decisions[0]) {
                    ok = false;
                    notes.push(format!("invalid decision {}", decisions[0]));
                }
            }
            let attempts: u64 = stats.iter().map(|s| s.attempts()).sum();
            let backoffs: u64 = stats.iter().map(|s| s.backoffs()).sum();
            if notes.is_empty() {
                notes.push(format!(
                    "decided {} (attempts {attempts}, backoffs {backoffs})",
                    decisions[0]
                ));
            }
            (ok, notes.join("; "))
        },
    )
}

/// An injected `step` panic plus a crash-stop: the panic is contained as a
/// per-processor outcome and the survivors still solve the task.
fn panic_containment_scenario(seed: u64, config: &ChaosConfig) -> ScenarioResult {
    let started = Instant::now();
    let n = 4;
    let inputs: Vec<u32> = (0..n as u32).collect();
    let procs: Vec<SnapshotProcess<u32>> =
        inputs.iter().map(|&x| SnapshotProcess::new(x, n)).collect();
    let plan = FaultPlan::new(n).panic_at(1, 2).crash_stop(3, 1);
    let (report, probes) = run_chaos_probed(
        procs,
        random_wirings(n, seed.wrapping_add(3000)),
        n,
        SnapRegister::default(),
        &plan,
        config,
        |_| CampaignProbe::default(),
    )
    .expect("valid chaos config");

    let outcomes = report.outcomes.clone();
    gather(
        "panic_containment",
        n,
        seed,
        started,
        outcomes,
        probes,
        Vec::new(),
        || {
            let mut ok = true;
            let mut notes = Vec::new();
            if !matches!(report.outcomes[1], ProcOutcome::Panicked { .. }) {
                ok = false;
                notes.push(format!(
                    "expected panic on p1, got {:?}",
                    report.outcomes[1]
                ));
            }
            for &s in &[0usize, 2] {
                if !report.outcomes[s].is_completed()
                    || report.outputs[s].len() != 1
                    || !report.outputs[s][0].contains(&inputs[s])
                {
                    ok = false;
                    notes.push(format!("survivor p{s} invalid"));
                }
            }
            if report.outputs[0].len() == 1
                && report.outputs[2].len() == 1
                && !report.outputs[0][0].comparable(&report.outputs[2][0])
            {
                ok = false;
                notes.push("survivor views incomparable".into());
            }
            if notes.is_empty() {
                notes.push("panic contained, survivors valid".into());
            }
            (ok, notes.join("; "))
        },
    )
}

fn scenario_json(r: &ScenarioResult) -> Value {
    let mut obj = Map::new();
    obj.insert("scenario".into(), Value::String(r.scenario.into()));
    obj.insert("n".into(), (r.n as u64).to_value());
    obj.insert("seed".into(), r.seed.to_value());
    obj.insert(
        "outcomes".into(),
        Value::Array(r.outcomes.iter().map(serde_json::to_value).collect()),
    );
    obj.insert(
        "outcome_labels".into(),
        Value::Array(
            r.outcomes
                .iter()
                .map(|o| Value::String(outcome_label(o)))
                .collect(),
        ),
    );
    obj.insert("reads".into(), r.reads.to_value());
    obj.insert("writes".into(), r.writes.to_value());
    obj.insert(
        "chaos_events".into(),
        Value::Array(r.chaos_events.iter().map(serde_json::to_value).collect()),
    );
    obj.insert(
        "backoff_events".into(),
        Value::Array(r.backoff_events.iter().map(serde_json::to_value).collect()),
    );
    obj.insert("checks_passed".into(), Value::Bool(r.checks_passed));
    obj.insert("detail".into(), Value::String(r.detail.clone()));
    obj.insert("elapsed_ms".into(), r.elapsed_ms.to_value());
    Value::Object(obj)
}

/// Runs the campaign and writes `results/chaos_report.json` plus
/// `results/chaos_events.jsonl`; prints a markdown summary. `smoke` cuts to
/// one seed per scenario (CI); `seed_base` offsets every scenario seed;
/// `out_path` overrides the JSON artifact path.
///
/// # Panics
///
/// Panics if any scenario's invariant checks fail (the campaign doubles as
/// an acceptance test), or if artifacts cannot be written.
pub fn run_campaign(
    smoke: bool,
    seed_base: u64,
    out_path: Option<&str>,
    telemetry: Option<std::sync::Arc<fa_obs::MetricRegistry>>,
) {
    let seeds: Vec<u64> = if smoke { vec![0] } else { vec![0, 1, 2] };
    // Generous deadlines: the scenarios finish in milliseconds, the
    // deadline only bounds pathological machines (loaded CI runners).
    let deadline = Duration::from_secs(if smoke { 60 } else { 120 });
    let mut config = ChaosConfig::new(MAX_STEPS).with_deadline(deadline);
    if let Some(registry) = telemetry {
        config = config.with_telemetry(registry);
    }

    let mut results = Vec::new();
    for &s in &seeds {
        let seed = seed_base.wrapping_add(s);
        results.push(snapshot_crash_scenario(seed, &config));
        results.push(renaming_chaos_scenario(seed, &config));
        results.push(consensus_backoff_scenario(seed, &config));
        results.push(panic_containment_scenario(seed, &config));
    }

    // JSON artifact.
    let mut root = Map::new();
    root.insert("schema_version".into(), 1u64.to_value());
    root.insert("experiment".into(), Value::String("chaos_campaign".into()));
    root.insert("smoke".into(), Value::Bool(smoke));
    root.insert("seed_base".into(), seed_base.to_value());
    root.insert(
        "scenarios".into(),
        Value::Array(results.iter().map(scenario_json).collect()),
    );
    let json = serde_json::to_string_pretty(&Value::Object(root)).expect("serialize report");
    fs::create_dir_all("results").expect("create results dir");
    let path = out_path.unwrap_or("results/chaos_report.json");
    let mut f = fs::File::create(path).expect("create report");
    writeln!(f, "{json}").expect("write report");

    // Event stream: every chaos and backoff event, one JSON object per line.
    let mut sink = JsonlSink::new(Vec::new());
    for r in &results {
        for ev in &r.chaos_events {
            sink.on_chaos(ev);
        }
        for ev in &r.backoff_events {
            sink.on_backoff(ev);
        }
    }
    fs::write("results/chaos_events.jsonl", sink.into_inner()).expect("write event stream");

    // Markdown summary.
    println!("== chaos campaign: fault injection on real threads ==\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.n.to_string(),
                r.seed.to_string(),
                r.outcomes
                    .iter()
                    .map(outcome_label)
                    .collect::<Vec<_>>()
                    .join(","),
                (r.reads + r.writes).to_string(),
                r.chaos_events.len().to_string(),
                r.backoff_events
                    .iter()
                    .map(|b| b.backoffs)
                    .sum::<u64>()
                    .to_string(),
                if r.checks_passed { "pass" } else { "FAIL" }.to_string(),
                r.elapsed_ms.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario",
            "n",
            "seed",
            "outcomes",
            "ops",
            "chaos evts",
            "backoffs",
            "checks",
            "ms",
        ],
        &rows,
    );
    for r in &results {
        println!("  {} seed {}: {}", r.scenario, r.seed, r.detail);
    }
    println!(
        "\nwrote {path} ({} scenario runs) and results/chaos_events.jsonl",
        results.len()
    );

    let failures: Vec<&ScenarioResult> = results.iter().filter(|r| !r.checks_passed).collect();
    assert!(
        failures.is_empty(),
        "chaos campaign checks failed: {:?}",
        failures
            .iter()
            .map(|r| format!("{} seed {}: {}", r.scenario, r.seed, r.detail))
            .collect::<Vec<_>>()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels_are_compact() {
        assert_eq!(outcome_label(&ProcOutcome::Completed), "ok");
        assert_eq!(
            outcome_label(&ProcOutcome::Crashed {
                after_ops: 3,
                covering: None
            }),
            "crash@3"
        );
        assert_eq!(
            outcome_label(&ProcOutcome::Crashed {
                after_ops: 2,
                covering: Some(4)
            }),
            "poised@2->r4"
        );
        assert_eq!(
            outcome_label(&ProcOutcome::Panicked {
                message: "x".into()
            }),
            "panic"
        );
    }

    #[test]
    fn acceptance_scenario_passes() {
        let config = ChaosConfig::new(MAX_STEPS).with_deadline(Duration::from_secs(60));
        let r = snapshot_crash_scenario(0, &config);
        assert!(r.checks_passed, "{}", r.detail);
        assert_eq!(r.outcomes.iter().filter(|o| o.is_crashed()).count(), 3);
        assert!(!r.chaos_events.is_empty());
    }

    #[test]
    fn consensus_scenario_decides_under_stall_storm() {
        let config = ChaosConfig::new(MAX_STEPS).with_deadline(Duration::from_secs(60));
        let r = consensus_backoff_scenario(0, &config);
        assert!(r.checks_passed, "{}", r.detail);
        assert!(r.backoff_events.iter().any(|b| b.attempts > 0));
    }
}

//! Benchmarks obstruction-free consensus (Figure 5): solo decision latency
//! and contended runs with a solo tail (experiment E7's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::runner::{run_consensus_random, WiringMode};
use fa_core::{ConsensusProcess, SnapRegister};
use fa_memory::{Executor, ProcId, SharedMemory, Wiring};

fn bench_solo(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_solo");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let procs: Vec<ConsensusProcess<u32>> =
                    (0..n as u32).map(|x| ConsensusProcess::new(x, n)).collect();
                let memory =
                    SharedMemory::new(n, SnapRegister::default(), vec![Wiring::identity(n); n])
                        .expect("memory");
                let mut exec = Executor::new(procs, memory).expect("executor");
                exec.run_solo(ProcId(0), 100_000_000).expect("solo decides");
                assert!(exec.is_halted(ProcId(0)));
            });
        });
    }
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_contended");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let inputs: Vec<u32> = (0..n as u32).collect();
                let res = run_consensus_random(
                    &inputs,
                    seed,
                    &WiringMode::Random,
                    20_000 * n,
                    100_000_000,
                )
                .expect("run");
                assert!(res.all_decided);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solo, bench_contended);
criterion_main!(benches);

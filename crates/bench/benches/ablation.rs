//! Ablation of the level mechanism: termination level n (the paper), n−1
//! (footnote 4), and 1 (≈ double collect). Lower levels terminate sooner —
//! the price of the paper's safety margin — but level 1 is incorrect (see
//! the model-check ablation test in tests/ablation.rs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::runner::{run_snapshot_random, SnapshotRunConfig};

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_terminate_level");
    group.sample_size(10);
    for n in [4usize, 6] {
        for (label, level) in [("level_n", n), ("level_n_minus_1", n - 1), ("level_1", 1)] {
            group.bench_with_input(BenchmarkId::new(label, n), &(n, level), |b, &(n, level)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let cfg = SnapshotRunConfig::new((0..n as u32).collect())
                        .with_seed(seed)
                        .with_terminate_level(level);
                    run_snapshot_random(&cfg).expect("terminates")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);

//! Benchmarks adaptive renaming (Figure 4) vs processor count and group
//! count (experiment E6's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_bench::group_inputs;
use fa_core::runner::{run_renaming_random, WiringMode};

fn bench_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("renaming");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("distinct", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let inputs: Vec<u32> = (0..n as u32).collect();
                run_renaming_random(&inputs, seed, &WiringMode::Random, 100_000_000)
                    .expect("terminates")
            });
        });
        group.bench_with_input(BenchmarkId::new("two_groups", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let inputs = group_inputs(n, 2, seed);
                run_renaming_random(&inputs, seed, &WiringMode::Random, 100_000_000)
                    .expect("terminates")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_renaming);
criterion_main!(benches);

//! Benchmarks the long-lived snapshot (Section 7): invocation throughput as
//! invocations accumulate view state across calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::{LongLivedSnapshotProcess, SnapRegister};
use fa_memory::{Executor, SharedMemory, Wiring};
use rand::SeedableRng;

fn bench_long_lived(c: &mut Criterion) {
    let mut group = c.benchmark_group("long_lived_snapshot");
    group.sample_size(10);
    for invocations in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(invocations),
            &invocations,
            |b, &k| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let n = 3;
                    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                    let procs: Vec<LongLivedSnapshotProcess<u32>> = (0..n as u32)
                        .map(|p| {
                            let inputs: Vec<u32> = (0..k as u32).map(|i| p * 1000 + i).collect();
                            LongLivedSnapshotProcess::new(inputs, n)
                        })
                        .collect();
                    let wirings: Vec<Wiring> =
                        (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
                    let memory =
                        SharedMemory::new(n, SnapRegister::default(), wirings).expect("memory");
                    let mut exec = Executor::new(procs, memory).expect("executor");
                    exec.run_random(rng, 500_000_000).expect("terminates");
                    exec.total_steps()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_long_lived);
criterion_main!(benches);

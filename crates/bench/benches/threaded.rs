//! E12 — The same algorithms on real OS threads and lock-protected (atomic)
//! registers: demonstrates the implementation runs on real concurrency, not
//! only in the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::{SnapRegister, SnapshotProcess};
use fa_memory::{threaded::run_threaded, Wiring};
use rand::SeedableRng;

fn bench_threaded_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_snapshot");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let procs: Vec<SnapshotProcess<u32>> =
                    (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
                let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
                let report = run_threaded(procs, wirings, n, SnapRegister::default(), 50_000_000)
                    .expect("threaded run");
                assert!(report.all_completed(), "threaded snapshot must terminate");
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threaded_snapshot);
criterion_main!(benches);

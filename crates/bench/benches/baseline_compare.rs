//! E9 — Baseline comparison: the fully-anonymous snapshot (ours) vs the
//! non-anonymous SWMR double-collect snapshot vs the naive double collect on
//! anonymous memory. Expected shape: anonymity costs steps — the SWMR
//! baseline finishes far sooner; the naive double collect is cheap when it
//! terminates but is not a correct snapshot in the anonymous model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_bench::{anonymous_snapshot_steps, double_collect_steps, swmr_steps};

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_compare");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("fully_anonymous", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                anonymous_snapshot_steps(n, seed, 100_000_000)
                    .expect("run")
                    .expect("terminates")
            });
        });
        group.bench_with_input(BenchmarkId::new("swmr_named", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                swmr_steps(n, seed, 100_000_000)
                    .expect("run")
                    .expect("terminates")
            });
        });
        group.bench_with_input(BenchmarkId::new("double_collect", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                // May livelock; budget-bounded. Count non-terminating runs as
                // the budget (they are rare under random schedules).
                double_collect_steps(n, seed, 2_000_000).expect("run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);

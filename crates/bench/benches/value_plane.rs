//! Microbenchmarks for the value plane: the 64-bit bitmask fast path of
//! `View` against the `BTreeSet` fallback, on the operations the snapshot
//! hot loop actually performs — clone (every register write), union (every
//! scan read), equality (the level test), hashing (model-checker dedup) —
//! plus an end-to-end snapshot run under each representation.
//!
//! `u32` inputs have a dense embedding, so `View<u32>` rides the bitmask;
//! [`Opaque`] deliberately has none, so `View<Opaque>` is pinned to the
//! fallback — the pre-interning representation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_bench::Opaque;
use fa_core::{SnapshotProcess, View};
use fa_memory::{Executor, SharedMemory, Wiring};
use std::hash::{Hash, Hasher};

fn dense(range: std::ops::Range<u32>) -> View<u32> {
    range.collect()
}

fn opaque(range: std::ops::Range<u32>) -> View<Opaque> {
    range.map(Opaque).collect()
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_union");
    group.sample_size(20);
    for n in [8u32, 32, 64] {
        let (a, b) = (dense(0..n / 2 + 1), dense(n / 2..n));
        group.bench_with_input(BenchmarkId::new("bitmask", n), &n, |bch, _| {
            bch.iter(|| {
                let mut v = a.clone();
                v.union_with(black_box(&b));
                v
            });
        });
        let (ao, bo) = (opaque(0..n / 2 + 1), opaque(n / 2..n));
        group.bench_with_input(BenchmarkId::new("fallback", n), &n, |bch, _| {
            bch.iter(|| {
                let mut v = ao.clone();
                v.union_with(black_box(&bo));
                v
            });
        });
    }
    group.finish();
}

fn bench_eq_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_eq_hash");
    group.sample_size(20);
    for n in [8u32, 64] {
        let (a, b) = (dense(0..n), dense(0..n));
        group.bench_with_input(BenchmarkId::new("bitmask", n), &n, |bch, _| {
            bch.iter(|| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                black_box(&a).hash(&mut h);
                black_box(&a) == black_box(&b) && h.finish() != 0
            });
        });
        let (ao, bo) = (opaque(0..n), opaque(0..n));
        group.bench_with_input(BenchmarkId::new("fallback", n), &n, |bch, _| {
            bch.iter(|| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                black_box(&ao).hash(&mut h);
                black_box(&ao) == black_box(&bo) && h.finish() != 0
            });
        });
    }
    group.finish();
}

/// Full snapshot runs: `n` processors, cyclic-shift wirings, round-robin.
/// Dominated by register-value clones and view unions — the scan/write hot
/// path the refactor targets.
fn snapshot_run_dense(n: usize) -> usize {
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
    let wirings: Vec<Wiring> = (0..n).map(|s| Wiring::cyclic_shift(n, s)).collect();
    let memory = SharedMemory::new(n, Default::default(), wirings).expect("memory");
    let mut exec = Executor::new(procs, memory).expect("executor");
    exec.run_round_robin(1_000_000).expect("terminates");
    exec.total_steps()
}

fn snapshot_run_opaque(n: usize) -> usize {
    let procs: Vec<SnapshotProcess<Opaque>> = (0..n as u32)
        .map(|x| SnapshotProcess::new(Opaque(x), n))
        .collect();
    let wirings: Vec<Wiring> = (0..n).map(|s| Wiring::cyclic_shift(n, s)).collect();
    let memory = SharedMemory::new(n, Default::default(), wirings).expect("memory");
    let mut exec = Executor::new(procs, memory).expect("executor");
    exec.run_round_robin(1_000_000).expect("terminates");
    exec.total_steps()
}

fn bench_snapshot_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_scan_path");
    group.sample_size(10);
    for n in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("bitmask", n), &n, |bch, &n| {
            bch.iter(|| snapshot_run_dense(n));
        });
        group.bench_with_input(BenchmarkId::new("fallback", n), &n, |bch, &n| {
            bch.iter(|| snapshot_run_opaque(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_union, bench_eq_hash, bench_snapshot_scan);
criterion_main!(benches);

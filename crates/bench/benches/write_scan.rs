//! Benchmarks the write–scan loop (Figure 1): steps until every processor's
//! view converges to the full input set, under the random and bounded-delay
//! adversaries. Convergence is schedule-dependent — bounded-delay schedules
//! can settle into non-converging covering patterns (exactly the paper's
//! Section 4 phenomenon; see the stable-view experiments) — so runs are
//! capped and a capped run reports the cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::{View, WriteScanProcess};
use fa_memory::{
    BoundedDelayScheduler, Executor, ProcId, RandomScheduler, Scheduler, SharedMemory, Wiring,
};
use rand::SeedableRng;

fn converge<S: Scheduler>(n: usize, seed: u64, mut sched: S) -> usize {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xabc);
    let procs: Vec<WriteScanProcess<u32>> =
        (0..n as u32).map(|x| WriteScanProcess::new(x, n)).collect();
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let memory = SharedMemory::new(n, View::new(), wirings).expect("memory");
    let mut exec = Executor::new(procs, memory).expect("executor");
    let full: View<u32> = (0..n as u32).collect();
    const CAP: usize = 1_000_000;
    let mut steps = 0usize;
    while (0..n).any(|i| exec.process(ProcId(i)).view() != &full) {
        let p = sched
            .next(&exec.live_procs())
            .expect("write-scan never halts");
        exec.step_proc(p).expect("step");
        steps += 1;
        if steps >= CAP {
            // Non-convergence is a legitimate outcome for quasi-fair
            // adversaries (Section 4's covering patterns); report the cap.
            break;
        }
    }
    steps
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_scan_convergence");
    group.sample_size(10);
    for n in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                converge(
                    n,
                    seed,
                    RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed)),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("bounded_delay_k4", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                converge(
                    n,
                    seed,
                    BoundedDelayScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed), n, 4),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);

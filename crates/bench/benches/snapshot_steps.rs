//! Benchmarks the wait-free snapshot (Figure 3): wall-clock and simulated
//! step counts vs the number of processors (experiment E4's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_core::runner::{run_snapshot_random, SnapshotRunConfig};

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_steps");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let cfg = SnapshotRunConfig::new((0..n as u32).collect()).with_seed(seed);
                run_snapshot_random(&cfg).expect("terminates")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);

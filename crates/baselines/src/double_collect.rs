//! The naive double-collect snapshot heuristic.
//!
//! "Maybe a double collect will work, i.e. reading the same set of values in
//! every register twice in a row? Neither does this work." (Section 4.)
//! This process implements exactly that heuristic so experiments can both
//! measure it (it is fast when it works) and exhibit its unsoundness in the
//! fully-anonymous model.

use fa_core::{View, ViewValue};
use fa_memory::{Action, LocalRegId, Process, StepInput};

/// A write–scan process that terminates when two consecutive scans observe
/// identical per-register contents, outputting its view at that point.
///
/// Sound in models where a repeated identical collect implies quiescence
/// (e.g. write-once SWMR); **unsound** under (full) anonymity — see the
/// `incomparable_outputs_witness` test for the two-processor refutation
/// built from the paper's Section 4.1 covering execution.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DoubleCollectProcess<V: ViewValue> {
    m: usize,
    view: View<V>,
    write_idx: usize,
    /// The previous scan's per-register observation, if the scan completed.
    prev_collect: Option<Vec<View<V>>>,
    phase: Phase<V>,
    /// Set once the output action has been emitted; next step halts.
    output_emitted: bool,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Phase<V: ViewValue> {
    Write,
    AwaitWrote,
    Scanning {
        next: usize,
        collected: Vec<View<V>>,
    },
    Done,
}

impl<V: ViewValue> DoubleCollectProcess<V> {
    /// Creates the process with the given input over `m` registers.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(input: V, m: usize) -> Self {
        assert!(m > 0, "the model requires at least one register");
        DoubleCollectProcess {
            m,
            view: View::singleton(input),
            write_idx: 0,
            prev_collect: None,
            phase: Phase::Write,
            output_emitted: false,
        }
    }

    /// The processor's current view (analysis only).
    #[must_use]
    pub fn view(&self) -> &View<V> {
        &self.view
    }
}

impl<V: ViewValue> Process for DoubleCollectProcess<V> {
    type Value = View<V>;
    type Output = View<V>;

    fn step(&mut self, input: StepInput<View<V>>) -> Action<View<V>, View<V>> {
        if self.output_emitted {
            return Action::Halt;
        }
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Write => {
                let local = LocalRegId(self.write_idx);
                self.write_idx = (self.write_idx + 1) % self.m;
                self.phase = Phase::AwaitWrote;
                Action::Write {
                    local,
                    value: self.view.clone(),
                }
            }
            Phase::AwaitWrote => {
                debug_assert!(matches!(input, StepInput::Wrote));
                self.phase = Phase::Scanning {
                    next: 1,
                    collected: Vec::with_capacity(self.m),
                };
                Action::Read {
                    local: LocalRegId(0),
                }
            }
            Phase::Scanning {
                next,
                mut collected,
            } => {
                let StepInput::ReadValue(v) = input else {
                    panic!("double collect expected a read value during scan");
                };
                collected.push(v.into_value());
                if next < self.m {
                    self.phase = Phase::Scanning {
                        next: next + 1,
                        collected,
                    };
                    return Action::Read {
                        local: LocalRegId(next),
                    };
                }
                // Scan complete: absorb, then compare with the previous scan.
                for reg in &collected {
                    self.view.union_with(reg);
                }
                let stable = self.prev_collect.as_ref() == Some(&collected);
                self.prev_collect = Some(collected);
                if stable {
                    self.output_emitted = true;
                    self.phase = Phase::Done;
                    return Action::Output(self.view.clone());
                }
                let local = LocalRegId(self.write_idx);
                self.write_idx = (self.write_idx + 1) % self.m;
                self.phase = Phase::AwaitWrote;
                Action::Write {
                    local,
                    value: self.view.clone(),
                }
            }
            Phase::Done => Action::Halt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_memory::{Executor, ProcId, SharedMemory, Wiring};
    use rand::SeedableRng;

    fn v(ids: &[u32]) -> View<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn terminates_under_round_robin_two_procs() {
        let n = 2;
        let procs = vec![
            DoubleCollectProcess::new(1u32, n),
            DoubleCollectProcess::new(2, n),
        ];
        let memory = SharedMemory::new(n, View::new(), vec![Wiring::identity(n); n]).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        exec.run_round_robin(100_000).unwrap();
        for i in 0..n {
            assert!(exec.first_output(ProcId(i)).is_some());
        }
    }

    #[test]
    fn solo_run_outputs_own_input() {
        let n = 3;
        let procs: Vec<DoubleCollectProcess<u32>> = (0..n)
            .map(|i| DoubleCollectProcess::new(i as u32 + 1, n))
            .collect();
        let memory = SharedMemory::new(n, View::new(), vec![Wiring::identity(n); n]).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        exec.run_solo(ProcId(0), 100_000).unwrap();
        assert_eq!(exec.first_output(ProcId(0)), Some(&v(&[1])));
    }

    #[test]
    fn usually_fine_under_random_schedules() {
        // The heuristic is not *always* wrong — that is what makes it
        // seductive. Under seeded random schedules it produces comparable
        // views here; the point of the paper is that an adversary can break
        // it (next test).
        for seed in 0..10 {
            let n = 3;
            let procs: Vec<DoubleCollectProcess<u32>> = (0..n)
                .map(|i| DoubleCollectProcess::new(i as u32 + 1, n))
                .collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
            let memory = SharedMemory::new(n, View::new(), wirings).unwrap();
            let mut exec = Executor::new(procs, memory).unwrap();
            let outcome = exec
                .run(fa_memory::RandomScheduler::new(rng), 1_000_000)
                .unwrap();
            if !outcome.all_halted {
                continue; // double collect may livelock; that's fine here
            }
            let views: Vec<View<u32>> = (0..n)
                .map(|i| exec.first_output(ProcId(i)).unwrap().clone())
                .collect();
            for a in &views {
                for b in &views {
                    assert!(a.comparable(b), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn incomparable_outputs_witness() {
        // The Section 4.1 refutation, at the process level: shadow p only
        // ever reads {1,2}; shadow p' only ever reads {1,3}. Both double
        // collects succeed, and the outputs are incomparable — the snapshot
        // task containment condition is violated.
        let drive = |input: u32, world: View<u32>| -> View<u32> {
            let mut proc = DoubleCollectProcess::new(input, 3);
            let mut step_input = StepInput::Start;
            for _ in 0..100 {
                match proc.step(step_input) {
                    Action::Write { .. } => step_input = StepInput::Wrote,
                    Action::Read { .. } => step_input = StepInput::read_value(world.clone()),
                    Action::Output(out) => return out,
                    Action::Halt => panic!("halted without output"),
                }
            }
            panic!("did not terminate");
        };
        let out_p = drive(1, v(&[1, 2]));
        let out_p_prime = drive(1, v(&[1, 3]));
        assert_eq!(out_p, v(&[1, 2]));
        assert_eq!(out_p_prime, v(&[1, 3]));
        assert!(
            !out_p.comparable(&out_p_prime),
            "double collect terminates with incomparable snapshots"
        );
    }

    #[test]
    fn double_collect_requires_two_identical_scans() {
        // A process whose reads keep changing never terminates.
        let mut proc = DoubleCollectProcess::new(1u32, 2);
        let mut step_input = StepInput::Start;
        let mut tick = 0u32;
        for _ in 0..1000 {
            match proc.step(step_input) {
                Action::Write { .. } => step_input = StepInput::Wrote,
                Action::Read { .. } => {
                    tick += 1;
                    step_input = StepInput::read_value(v(&[1, tick]));
                }
                Action::Output(_) => panic!("must not terminate under churn"),
                Action::Halt => panic!("must not halt"),
            }
        }
    }
}

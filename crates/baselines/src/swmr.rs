//! One-shot Afek-style snapshot in the classic non-anonymous SWMR model.
//!
//! The control baseline: processors have identities, each owns register `i`
//! of a *named* memory (enforced by the memory's single-writer mode). A
//! processor writes its input once to its own register, then performs
//! repeated collects until two consecutive collects are identical, and
//! outputs the set of values collected.
//!
//! Because registers here are write-once, a successful double collect
//! certifies the exact memory state at a point in time, so outputs are
//! totally ordered by containment and the snapshot task is solved — this is
//! the textbook situation the fully-anonymous model destroys (no identities,
//! no owned registers, no common register order).

use fa_core::{View, ViewValue};
use fa_memory::{Action, LocalRegId, Process, StepInput};
use serde::{Deserialize, Serialize};

/// Contents of a single-writer register: unwritten, or the owner's value.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwmrRegister<V> {
    /// The value written by the owner, if any.
    pub value: Option<V>,
}

/// The one-shot SWMR snapshot process. **Not anonymous**: the process is
/// constructed with its own identity (the index of the register it owns).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SwmrSnapshotProcess<V: ViewValue> {
    /// This processor's identity = the register it owns.
    me: usize,
    input: V,
    m: usize,
    prev_collect: Option<Vec<SwmrRegister<V>>>,
    phase: Phase<V>,
    output_emitted: bool,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Phase<V> {
    WriteOwn,
    AwaitWrote,
    Scanning {
        next: usize,
        collected: Vec<SwmrRegister<V>>,
    },
    Done,
}

impl<V: ViewValue> SwmrSnapshotProcess<V> {
    /// Creates the process with identity `me` (owner of register `me`) and
    /// the given input, over `m` registers.
    ///
    /// # Panics
    ///
    /// Panics if `me >= m` or `m == 0`.
    #[must_use]
    pub fn new(me: usize, input: V, m: usize) -> Self {
        assert!(m > 0, "the model requires at least one register");
        assert!(me < m, "identity must index an owned register");
        SwmrSnapshotProcess {
            me,
            input,
            m,
            prev_collect: None,
            phase: Phase::WriteOwn,
            output_emitted: false,
        }
    }
}

impl<V: ViewValue> Process for SwmrSnapshotProcess<V> {
    type Value = SwmrRegister<V>;
    type Output = View<V>;

    fn step(&mut self, input: StepInput<SwmrRegister<V>>) -> Action<SwmrRegister<V>, View<V>> {
        if self.output_emitted {
            return Action::Halt;
        }
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::WriteOwn => {
                self.phase = Phase::AwaitWrote;
                Action::Write {
                    local: LocalRegId(self.me),
                    value: SwmrRegister {
                        value: Some(self.input.clone()),
                    },
                }
            }
            Phase::AwaitWrote => {
                debug_assert!(matches!(input, StepInput::Wrote));
                self.phase = Phase::Scanning {
                    next: 1,
                    collected: Vec::with_capacity(self.m),
                };
                Action::Read {
                    local: LocalRegId(0),
                }
            }
            Phase::Scanning {
                next,
                mut collected,
            } => {
                let StepInput::ReadValue(v) = input else {
                    panic!("swmr snapshot expected a read value during scan");
                };
                collected.push(v.into_value());
                if next < self.m {
                    self.phase = Phase::Scanning {
                        next: next + 1,
                        collected,
                    };
                    return Action::Read {
                        local: LocalRegId(next),
                    };
                }
                let stable = self.prev_collect.as_ref() == Some(&collected);
                if stable {
                    self.output_emitted = true;
                    self.phase = Phase::Done;
                    let view: View<V> = collected.into_iter().filter_map(|r| r.value).collect();
                    return Action::Output(view);
                }
                self.prev_collect = Some(collected);
                // Start the next collect immediately (no re-write needed:
                // the own register is write-once).
                self.phase = Phase::Scanning {
                    next: 1,
                    collected: Vec::with_capacity(self.m),
                };
                Action::Read {
                    local: LocalRegId(0),
                }
            }
            Phase::Done => Action::Halt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fa_memory::{Executor, ProcId, SharedMemory, Wiring};
    use rand::SeedableRng;

    fn system(n: usize) -> Executor<SwmrSnapshotProcess<u32>> {
        let procs: Vec<SwmrSnapshotProcess<u32>> = (0..n)
            .map(|i| SwmrSnapshotProcess::new(i, 10 + i as u32, n))
            .collect();
        let mut memory = SharedMemory::named(n, n, SwmrRegister::default()).unwrap();
        memory.set_owners((0..n).map(ProcId).collect()).unwrap();
        Executor::new(procs, memory).unwrap()
    }

    #[test]
    fn solves_snapshot_task_under_random_schedules() {
        for seed in 0..20 {
            let n = 4;
            let mut exec = system(n);
            exec.run_random(rand_chacha::ChaCha8Rng::seed_from_u64(seed), 1_000_000)
                .unwrap();
            let views: Vec<View<u32>> = (0..n)
                .map(|i| exec.first_output(ProcId(i)).unwrap().clone())
                .collect();
            for (i, a) in views.iter().enumerate() {
                assert!(
                    a.contains(&(10 + i as u32)),
                    "seed {seed}: own value present"
                );
                for b in &views {
                    assert!(a.comparable(b), "seed {seed}: outputs comparable");
                }
            }
        }
    }

    #[test]
    fn solo_processor_sees_only_itself() {
        let mut exec = system(3);
        exec.run_solo(ProcId(2), 100_000).unwrap();
        assert_eq!(exec.first_output(ProcId(2)), Some(&View::singleton(12)));
    }

    #[test]
    fn single_writer_protection_is_active() {
        // A buggy "anonymous" process writing register 0 regardless of
        // identity trips the memory's owner check.
        let procs: Vec<SwmrSnapshotProcess<u32>> = vec![
            SwmrSnapshotProcess::new(0, 1, 2),
            SwmrSnapshotProcess::new(0, 2, 2),
        ];
        let mut memory = SharedMemory::named(2, 2, SwmrRegister::default()).unwrap();
        memory.set_owners(vec![ProcId(0), ProcId(1)]).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        // p1 (constructed with the wrong identity 0) attempts to write
        // register 0, which p0 owns.
        let err = exec.step_proc(ProcId(1)).unwrap_err();
        assert!(matches!(err, fa_memory::MemoryError::NotOwner { .. }));
    }

    #[test]
    #[should_panic(expected = "identity must index an owned register")]
    fn rejects_out_of_range_identity() {
        let _ = SwmrSnapshotProcess::new(5, 1u32, 3);
    }

    #[test]
    fn works_without_owner_enforcement_too() {
        // The algorithm itself never writes a register it does not own; the
        // owner map is belt and braces.
        let n = 3;
        let procs: Vec<SwmrSnapshotProcess<u32>> = (0..n)
            .map(|i| SwmrSnapshotProcess::new(i, i as u32, n))
            .collect();
        let memory =
            SharedMemory::new(n, SwmrRegister::default(), vec![Wiring::identity(n); n]).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        exec.run_round_robin(1_000_000).unwrap();
        for i in 0..n {
            assert!(exec.first_output(ProcId(i)).is_some());
        }
    }
}

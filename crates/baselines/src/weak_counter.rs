//! Guerraoui & Ruppert's weak counter, and why it needs *named* memory.
//!
//! The weak counter is the primitive behind Guerraoui & Ruppert's
//! processor-anonymous snapshot and consensus: processors "participate in a
//! race, starting from a common initial position in a one-dimensional array,
//! to be the first to write at a position in the array" (paper,
//! Section 1). A `get` operation walks the array of binary registers from
//! position 0 upwards, finds the first unset register, sets it, and returns
//! its position. The key property: a `get` that starts after another `get`
//! completed returns a position **at least as large**.
//!
//! "With anonymous memory, there is no way to even define a common starting
//! register for the race or a shared ordering of the registers to race
//! through, and this scheme does not work" (Section 1; also Section 8).
//! [`anonymous_memory_violation`] constructs the violating execution: with
//! cyclically shifted wirings two processors walk the array in different
//! orders, and a later `get` returns a *smaller* position than an earlier,
//! completed one.

use fa_memory::{
    Action, Executor, LocalRegId, MemoryError, ProcId, Process, SharedMemory, StepInput, Wiring,
};

/// A processor performing `count` weak-counter `get` operations on an array
/// of `m` binary registers, outputting each obtained position.
///
/// The register value is `bool` (`false` = unset). The walk is over *local*
/// register names — which is the whole point: with the identity wiring this
/// is the common shared order the construction needs; with anonymous wirings
/// every processor walks a different order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WeakCounterProcess {
    m: usize,
    remaining: usize,
    phase: Phase,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Phase {
    /// Walking the array: next local position to examine.
    Walk {
        pos: usize,
    },
    /// Found an unset register at `pos`; the set-write is in flight.
    Claiming {
        pos: usize,
    },
    /// The output action for position `pos` is in flight.
    Outputting,
    Done,
}

impl WeakCounterProcess {
    /// Creates a process that performs `count` `get`s over `m` registers.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `count == 0`.
    #[must_use]
    pub fn new(m: usize, count: usize) -> Self {
        assert!(m > 0, "the model requires at least one register");
        assert!(count > 0, "at least one get required");
        WeakCounterProcess {
            m,
            remaining: count,
            phase: Phase::Walk { pos: 0 },
        }
    }
}

impl Process for WeakCounterProcess {
    type Value = bool;
    /// Each output is the position returned by one `get`.
    type Output = usize;

    fn step(&mut self, input: StepInput<bool>) -> Action<bool, usize> {
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Walk { pos } => {
                match input {
                    StepInput::ReadValue(v) if *v => {
                        // Register set: keep walking. (The array is sized by
                        // the caller; walking off the end is a panic — the
                        // counter is exhausted.)
                        assert!(pos + 1 < self.m, "weak counter exhausted");
                        self.phase = Phase::Walk { pos: pos + 1 };
                        Action::Read {
                            local: LocalRegId(pos + 1),
                        }
                    }
                    StepInput::ReadValue(_) => {
                        // First unset register found: claim it.
                        self.phase = Phase::Claiming { pos };
                        Action::Write {
                            local: LocalRegId(pos),
                            value: true,
                        }
                    }
                    StepInput::Start | StepInput::OutputRecorded => {
                        // Begin (or begin the next get): read position 0...
                        // or continue from `pos` — a fresh get restarts the
                        // walk from 0 per the construction.
                        self.phase = Phase::Walk { pos };
                        Action::Read {
                            local: LocalRegId(pos),
                        }
                    }
                    StepInput::Wrote => unreachable!("walk expects read results"),
                }
            }
            Phase::Claiming { pos } => {
                debug_assert!(matches!(input, StepInput::Wrote));
                self.phase = Phase::Outputting;
                Action::Output(pos)
            }
            Phase::Outputting => {
                debug_assert!(matches!(input, StepInput::OutputRecorded));
                self.remaining -= 1;
                if self.remaining == 0 {
                    self.phase = Phase::Done;
                    Action::Halt
                } else {
                    // Next get restarts the walk from position 0.
                    self.phase = Phase::Walk { pos: 0 };
                    Action::Read {
                        local: LocalRegId(0),
                    }
                }
            }
            Phase::Done => Action::Halt,
        }
    }
}

/// Outcome of a weak-counter demonstration run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeakCounterReport {
    /// Positions returned, per processor, in operation order.
    pub positions: Vec<Vec<usize>>,
    /// `true` iff the second, later `get` returned a strictly larger
    /// position than the first, completed one — the progress property that
    /// lets Guerraoui & Ruppert use the counter for fresh timestamps.
    pub strictly_increasing: bool,
}

/// Runs the property demonstration on *named* memory: `p0` completes a `get`,
/// then `p1` performs one. The later `get` must return a position at least
/// as large. This is the setting of Guerraoui & Ruppert, and it works.
///
/// # Errors
///
/// Propagates executor errors.
pub fn named_memory_demo(m: usize) -> Result<WeakCounterReport, MemoryError> {
    let procs = vec![WeakCounterProcess::new(m, 1), WeakCounterProcess::new(m, 1)];
    let memory = SharedMemory::named(m, 2, false)?;
    let mut exec = Executor::new(procs, memory)?;
    exec.run_solo(ProcId(0), 10_000)?; // g1 completes
    exec.run_solo(ProcId(1), 10_000)?; // then g2 runs
    let positions: Vec<Vec<usize>> = (0..2).map(|i| exec.outputs(ProcId(i)).to_vec()).collect();
    let strictly_increasing = positions[1][0] > positions[0][0];
    Ok(WeakCounterReport {
        positions,
        strictly_increasing,
    })
}

/// Runs the same two sequential `get`s on *anonymous* memory with cyclically
/// shifted wirings and exhibits the violation: the second, later `get`
/// returns the **same** position 0 as the first — there is no common order
/// to race through, so sequential operations no longer obtain distinct,
/// increasing timestamps, which is what Guerraoui & Ruppert's constructions
/// consume the counter for.
///
/// # Errors
///
/// Propagates executor errors.
pub fn anonymous_memory_violation(m: usize) -> Result<WeakCounterReport, MemoryError> {
    assert!(m >= 2, "the violation needs at least two registers");
    // p0 walks the identity order; p1's wiring shifts by one, so p1's local
    // position 0 is ground-truth register 1.
    let wirings = vec![Wiring::identity(m), Wiring::cyclic_shift(m, 1)];
    let procs = vec![WeakCounterProcess::new(m, 1), WeakCounterProcess::new(m, 1)];
    let memory = SharedMemory::new(m, false, wirings)?;
    let mut exec = Executor::new(procs, memory)?;
    // g1 by p1: p1's local position 0 is ground-truth register 1; it is
    // unset, so p1 claims it and returns position 0.
    exec.run_solo(ProcId(1), 10_000)?;
    // g2 by p0, strictly after g1 completed: p0's local position 0 is
    // ground-truth register 0, still unset — p0 claims it and also returns
    // position 0. Two sequential gets, identical "timestamps".
    exec.run_solo(ProcId(0), 10_000)?;
    let positions: Vec<Vec<usize>> = (0..2).map(|i| exec.outputs(ProcId(i)).to_vec()).collect();
    let strictly_increasing = positions[0][0] > positions[1][0];
    Ok(WeakCounterReport {
        positions,
        strictly_increasing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_memory_counter_increases() {
        for m in 2..8 {
            let report = named_memory_demo(m).unwrap();
            assert!(report.strictly_increasing, "m={m}: {:?}", report.positions);
            // Sequential gets return strictly increasing positions here.
            assert_eq!(report.positions[0], vec![0]);
            assert_eq!(report.positions[1], vec![1]);
        }
    }

    #[test]
    fn anonymous_memory_breaks_the_race() {
        for m in 2..8 {
            let report = anonymous_memory_violation(m).unwrap();
            assert!(
                !report.strictly_increasing,
                "m={m}: anonymous wiring must break the counter, got {:?}",
                report.positions
            );
            // Both sequential gets return position 0: duplicate "timestamps".
            assert_eq!(report.positions[0], vec![0]);
            assert_eq!(report.positions[1], vec![0]);
        }
    }

    #[test]
    fn concurrent_gets_may_share_positions_hence_weak() {
        // Step-granular round-robin makes the two processors read the same
        // unset register before either claims it: both gets return the same
        // position. Duplicates under concurrency are exactly why the counter
        // is only "weak"; per-processor sequences still increase.
        let procs = vec![WeakCounterProcess::new(8, 3), WeakCounterProcess::new(8, 2)];
        let memory = SharedMemory::named(8, 2, false).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        exec.run_round_robin(10_000).unwrap();
        assert_eq!(exec.outputs(ProcId(0)), &[0, 1, 2]);
        assert_eq!(exec.outputs(ProcId(1)), &[0, 1]);
        for p in 0..2 {
            let outs = exec.outputs(ProcId(p));
            assert!(outs.windows(2).all(|w| w[0] < w[1]), "per-proc increasing");
        }
    }

    #[test]
    fn sequential_gets_are_distinct_on_named_memory() {
        let procs = vec![WeakCounterProcess::new(8, 3), WeakCounterProcess::new(8, 2)];
        let memory = SharedMemory::named(8, 2, false).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        // Fully sequential: p0's gets, then p1's.
        exec.run_solo(ProcId(0), 10_000).unwrap();
        exec.run_solo(ProcId(1), 10_000).unwrap();
        assert_eq!(exec.outputs(ProcId(0)), &[0, 1, 2]);
        assert_eq!(exec.outputs(ProcId(1)), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "weak counter exhausted")]
    fn exhaustion_panics() {
        let mut p = WeakCounterProcess::new(2, 1);
        let _ = p.step(StepInput::Start);
        let _ = p.step(StepInput::read_value(true));
        let _ = p.step(StepInput::read_value(true));
    }

    #[test]
    fn per_get_walk_restarts_from_zero() {
        let mut p = WeakCounterProcess::new(4, 2);
        // First get: read 0 -> unset -> claim -> output 0.
        assert_eq!(p.step(StepInput::Start), Action::read(0));
        assert_eq!(p.step(StepInput::read_value(false)), Action::write(0, true));
        assert_eq!(p.step(StepInput::Wrote), Action::Output(0));
        // Second get restarts at local position 0.
        assert_eq!(p.step(StepInput::OutputRecorded), Action::read(0));
        assert_eq!(p.step(StepInput::read_value(true)), Action::read(1));
        assert_eq!(p.step(StepInput::read_value(false)), Action::write(1, true));
        assert_eq!(p.step(StepInput::Wrote), Action::Output(1));
        assert_eq!(p.step(StepInput::OutputRecorded), Action::Halt);
    }
}

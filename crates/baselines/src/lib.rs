//! # fa-baselines: comparison algorithms from stronger models
//!
//! The paper's Section 8 situates the fully-anonymous snapshot against prior
//! work in stronger models. This crate implements those baselines so the
//! benchmark harness (experiment E9) can compare like for like:
//!
//! * [`DoubleCollectProcess`] — the naive "terminate after two identical
//!   collects" heuristic. Works often in practice, but is **not** a correct
//!   snapshot in the (fully-)anonymous model: the covering executions of
//!   Section 4.1 drive two processors to terminate with incomparable views.
//!   The unit tests and the model checker exhibit the violation.
//! * [`SwmrSnapshotProcess`] — a one-shot Afek-style snapshot in the classic
//!   *non-anonymous* single-writer model: each processor owns a register,
//!   writes once, and double-collects. With write-once registers the double
//!   collect is sound; this is the "everything is easy with identities"
//!   control.
//! * [`weak_counter`] — Guerraoui & Ruppert's weak-counter primitive for
//!   *processor-anonymous, named-memory* systems, plus the demonstration the
//!   paper appeals to in Section 8: the construction relies on a shared
//!   ordering of registers, and an anonymous-memory wiring breaks its
//!   monotonicity property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod double_collect;
mod swmr;
pub mod weak_counter;

pub use double_collect::DoubleCollectProcess;
pub use swmr::{SwmrRegister, SwmrSnapshotProcess};
pub use weak_counter::{WeakCounterProcess, WeakCounterReport};

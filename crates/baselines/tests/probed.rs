//! Probe-layer coverage for all three baselines: the same `fa-obs` telemetry
//! the paper's algorithms report is available for the Guerraoui–Ruppert weak
//! counter, the SWMR snapshot, and the double-collect heuristic.

use fa_baselines::{DoubleCollectProcess, SwmrRegister, SwmrSnapshotProcess, WeakCounterProcess};
use fa_core::View;
use fa_memory::{Executor, ProcId, RandomScheduler, SharedMemory, Wiring};
use fa_obs::RunMetrics;
use rand::SeedableRng;

#[test]
fn double_collect_metrics_count_all_ops() {
    let n = 3;
    let procs: Vec<DoubleCollectProcess<u32>> = (0..n)
        .map(|i| DoubleCollectProcess::new(i as u32 + 1, n))
        .collect();
    let memory = SharedMemory::new(n, View::new(), vec![Wiring::identity(n); n]).unwrap();
    let mut exec = Executor::with_probe(procs, memory, RunMetrics::new()).unwrap();
    exec.run_round_robin(100_000).unwrap();
    assert!(exec.all_halted());

    let total_steps = exec.total_steps() as u64;
    let m = exec.into_probe();
    assert_eq!(m.total_steps, total_steps);
    assert_eq!(m.per_proc.len(), n);
    // A double collect needs at least two scans of n registers each.
    assert!(m.per_proc.iter().all(|p| p.reads >= 2 * n as u64));
    assert_eq!(m.total_outputs(), n as u64);
    assert_eq!(m.steps_to_output.count(), n as u64);
    // Identical deterministic processes under round-robin: identical work.
    assert!(m.per_proc.iter().all(|p| p.reads == m.per_proc[0].reads));
}

#[test]
fn swmr_metrics_single_writer_per_register() {
    let n = 4;
    let procs: Vec<SwmrSnapshotProcess<u32>> = (0..n)
        .map(|i| SwmrSnapshotProcess::new(i, i as u32, n))
        .collect();
    let mut memory = SharedMemory::named(n, n, SwmrRegister::default()).unwrap();
    memory.set_owners((0..n).map(ProcId).collect()).unwrap();
    let mut exec = Executor::with_probe(procs, memory, RunMetrics::new()).unwrap();
    exec.run(
        RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(7)),
        1_000_000,
    )
    .unwrap();
    assert!(exec.all_halted());

    let m = exec.into_probe();
    assert_eq!(m.total_outputs(), n as u64);
    assert!(
        m.total_writes() >= n as u64,
        "each processor writes its own register"
    );
    // SWMR: at most n processors can be poised to write (one per owned
    // register), and someone always is until the run winds down.
    assert!(m.peak_covering >= 1 && m.peak_covering <= n);
}

#[test]
fn weak_counter_solo_runs_leave_no_covering() {
    // The weak-counter demo runs are solo (sequential), so the probe must
    // never see more than one processor poised to write at once.
    let m_regs = 4;
    let procs = vec![
        WeakCounterProcess::new(m_regs, 1),
        WeakCounterProcess::new(m_regs, 1),
    ];
    let memory = SharedMemory::named(m_regs, 2, false).unwrap();
    let mut exec = Executor::with_probe(procs, memory, RunMetrics::new()).unwrap();
    exec.run_solo(ProcId(0), 10_000).unwrap();
    exec.run_solo(ProcId(1), 10_000).unwrap();

    let m = exec.into_probe();
    assert_eq!(m.total_outputs(), 2);
    assert!(
        m.peak_covering <= 1,
        "sequential gets cannot assemble a covering"
    );
    assert!(m.per_proc[0].first_output_at < m.per_proc[1].first_output_at);
    // The second walker reads the first walker's claimed register before
    // claiming its own, so it does strictly more work.
    assert!(m.per_proc[1].reads >= m.per_proc[0].reads);
}

//! Integration (E9 correctness side): the baselines behave as their models
//! predict — and the naive double collect is refuted in the anonymous model.

use fa_baselines::weak_counter::{anonymous_memory_violation, named_memory_demo};
use fa_bench::{anonymous_snapshot_steps, double_collect_steps, swmr_steps};

#[test]
fn weak_counter_needs_named_memory() {
    for m in 2..10 {
        assert!(named_memory_demo(m).unwrap().strictly_increasing, "m={m}");
        assert!(
            !anonymous_memory_violation(m).unwrap().strictly_increasing,
            "m={m}"
        );
    }
}

#[test]
fn step_cost_ordering_swmr_cheapest() {
    // Expected shape (E9): the non-anonymous SWMR baseline needs far fewer
    // steps than the fully-anonymous algorithm — identities are what make
    // snapshots cheap. Compare means across seeds.
    let n = 5;
    let mut swmr_total = 0usize;
    let mut anon_total = 0usize;
    let runs = 10;
    for seed in 0..runs {
        swmr_total += swmr_steps(n, seed, 100_000_000)
            .unwrap()
            .expect("terminates");
        anon_total += anonymous_snapshot_steps(n, seed, 100_000_000)
            .unwrap()
            .expect("terminates");
    }
    assert!(
        anon_total > 2 * swmr_total,
        "anonymity must cost steps: anon={anon_total} swmr={swmr_total}"
    );
}

#[test]
fn double_collect_is_cheap_when_it_terminates() {
    let n = 4;
    let mut wins = 0;
    for seed in 0..10 {
        if let (Some(dc), Some(anon)) = (
            double_collect_steps(n, seed, 5_000_000).unwrap(),
            anonymous_snapshot_steps(n, seed, 100_000_000).unwrap(),
        ) {
            if dc < anon {
                wins += 1;
            }
        }
    }
    assert!(
        wins >= 5,
        "double collect should usually be cheaper (wins={wins})"
    );
}

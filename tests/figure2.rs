//! Integration (E1): the Figure 2 execution reproduced end to end.

use fa_core::figure2::{expected_rows, run_figure2, run_figure2_extended};
use fa_core::View;

#[test]
fn all_thirteen_rows_reproduce() {
    let observed = run_figure2().unwrap();
    let expected = expected_rows();
    for (o, e) in observed.iter().zip(&expected) {
        assert_eq!(o.registers, e.registers, "row {}", e.row);
        assert_eq!(o.views, e.views, "row {}", e.row);
    }
}

#[test]
fn extension_scales_with_cycles() {
    for cycles in [1usize, 5, 50] {
        let report = run_figure2_extended(cycles).unwrap();
        let v12: View<u32> = [1, 2].into_iter().collect();
        let v13: View<u32> = [1, 3].into_iter().collect();
        for r in &report.shadow_p_reads {
            assert_eq!(r, &v12, "cycles={cycles}");
        }
        for r in &report.shadow_p_prime_reads {
            assert_eq!(r, &v13, "cycles={cycles}");
        }
    }
}

//! End-to-end tests of the schedule-fuzzing subsystem: corpus replay,
//! injected-bug catching + shrinking, campaign determinism, and clean
//! campaigns over the unmodified algorithms.

use fa_fuzz::case::InjectedBug;
use fa_fuzz::{
    corpus, replay_case, run_campaign, AlgoKind, CampaignConfig, CaseGen, ReproArtifact,
};
use fa_obs::NoProbe;

fn read_corpus(name: &str) -> ReproArtifact {
    let path = format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR"));
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing corpus file {path}: {e}"));
    ReproArtifact::from_json(&json).unwrap_or_else(|e| panic!("corrupt corpus file {path}: {e}"))
}

#[test]
fn committed_fig2_artifact_matches_builder_and_replays() {
    let committed = read_corpus("fig2_pathological.json");
    let built = corpus::figure2_artifact();
    assert_eq!(
        committed, built,
        "corpus/fig2_pathological.json is stale; regenerate with \
         `cargo run -p fa-bench --bin fuzz -- --write-corpus corpus`"
    );
    // Clean fixture: no oracle fires, and the end state is pinned. The
    // level mechanism defuses the pathological schedule: p1 terminates
    // soundly with {1}, after which the p2/p3 chase resolves.
    let result = committed.replay();
    assert!(result.violation.is_none(), "{:?}", result.violation);
    assert_eq!(result.pattern, committed.expected_pattern.clone().unwrap());
    assert_eq!(result.pattern[0], vec![1]);
    assert!(committed.replay_confirms());
    // Determinism: replaying twice gives identical everything.
    let again = committed.replay();
    assert_eq!(result.steps, again.steps);
    assert_eq!(result.pattern, again.pattern);
    assert_eq!(result.outputs, again.outputs);
}

#[test]
fn committed_e13_artifact_matches_builder_and_reproduces_disagreement() {
    let committed = read_corpus("e13_unseen_competitor.json");
    let built = corpus::e13_artifact();
    assert_eq!(
        committed, built,
        "corpus/e13_unseen_competitor.json is stale; regenerate with \
         `cargo run -p fa-bench --bin fuzz -- --write-corpus corpus`"
    );
    let result = committed.replay();
    let v = result.violation.expect("naive rule must disagree");
    assert_eq!(v.invariant, "consensus.agreement");
    assert!(committed.replay_confirms());
    // The disagreement is between concrete proposed values.
    let d: Vec<_> = result.outputs.iter().flatten().collect();
    assert_eq!(d.len(), 2, "both processors decided");
    assert_ne!(d[0], d[1]);
}

/// The acceptance-criteria demonstration: a campaign against the injected
/// naive consensus rule catches the bug and shrinks it to a replayable
/// scripted schedule of at most 200 steps.
#[test]
fn injected_consensus_bug_is_caught_shrunk_and_replayable() {
    let mut gen = CaseGen::standard(vec![2, 3], 400);
    gen.inject = Some(InjectedBug::ConsensusNaiveRule);
    gen.algos = vec![AlgoKind::Consensus];
    let config = CampaignConfig {
        campaign: "inject-test".to_string(),
        cases: 200,
        seed: 0x0bad_5eed,
        jobs: Some(4),
        gen,
        telemetry: None,
    };
    let report = run_campaign(&config, &mut NoProbe);
    assert!(
        !report.violations.is_empty(),
        "the injected bug must be caught within 200 cases"
    );
    let artifact = report.first_repro.expect("violation produces an artifact");
    assert!(
        artifact.script.steps.len() <= 200,
        "shrunk schedule too long: {} steps",
        artifact.script.steps.len()
    );
    assert!(
        artifact.replay_confirms(),
        "shrunk artifact must reproduce the violation"
    );
    // Local minimality: dropping any single step loses the violation.
    let steps = &artifact.script.steps;
    for i in 0..steps.len() {
        let mut shorter = steps.clone();
        shorter.remove(i);
        assert!(
            replay_case(&artifact.case, &shorter).violation.is_none(),
            "shrunk schedule is not 1-minimal at position {i}"
        );
    }
    // The artifact round-trips through its JSON wire format.
    let back = ReproArtifact::from_json(&artifact.to_json()).unwrap();
    assert_eq!(back, artifact);
    assert!(back.replay_confirms());
    // And the replay is deterministic.
    let r1 = back.replay();
    let r2 = back.replay();
    assert_eq!(r1.steps, r2.steps);
    assert_eq!(r1.violation, r2.violation);
    assert_eq!(r1.schedule, r2.schedule);
}

/// Unmodified algorithms under PCT + crashes: no oracle may fire.
#[test]
fn clean_campaign_reports_zero_violations() {
    let config = CampaignConfig {
        campaign: "clean-test".to_string(),
        cases: 600,
        seed: 0xc1ea,
        jobs: None,
        gen: CaseGen::standard(vec![3, 4, 5, 6], 600),
        telemetry: None,
    };
    let report = run_campaign(&config, &mut NoProbe);
    assert_eq!(report.cases, 600);
    assert!(
        report.violations.is_empty(),
        "violations on unmodified algorithms: {:?} (first: {:?})",
        report.violations,
        report.first_repro.map(|a| a.violation)
    );
    // All three families were exercised and explored many interleavings.
    for (kind, tally) in &report.per_algo {
        assert!(tally.cases > 0, "{kind:?} never ran");
        assert!(tally.distinct_patterns > 1, "{kind:?} explored one pattern");
    }
}

/// The report is deterministic in the worker count: same seed, different
/// `jobs`, identical aggregate results.
#[test]
fn campaign_report_is_deterministic_across_worker_counts() {
    let run = |jobs: Option<usize>| {
        let mut gen = CaseGen::standard(vec![2, 3], 300);
        gen.inject = Some(InjectedBug::ConsensusNaiveRule);
        gen.algos = vec![AlgoKind::Consensus];
        run_campaign(
            &CampaignConfig {
                campaign: "det-test".to_string(),
                cases: 120,
                seed: 77,
                jobs,
                gen,
                telemetry: None,
            },
            &mut NoProbe,
        )
    };
    let a = run(Some(1));
    let b = run(Some(4));
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.total_steps, b.total_steps);
    assert_eq!(a.distinct_patterns, b.distinct_patterns);
    assert_eq!(a.per_algo, b.per_algo);
    assert_eq!(
        a.first_repro.map(|r| (r.label, r.script.steps)),
        b.first_repro.map(|r| (r.label, r.script.steps))
    );
}

/// Campaign telemetry flows through the fa-obs probe layer.
#[test]
fn campaign_emits_fuzz_events_per_algorithm() {
    use fa_obs::JsonlSink;
    let config = CampaignConfig {
        campaign: "events-test".to_string(),
        cases: 30,
        seed: 5,
        jobs: Some(2),
        gen: CaseGen::standard(vec![3], 300),
        telemetry: None,
    };
    let mut sink = JsonlSink::new(Vec::new());
    let report = run_campaign(&config, &mut sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let events = fa_obs::parse_jsonl(&text).unwrap();
    let fuzz: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            fa_obs::ProbeEvent::Fuzz(f) => Some(f),
            _ => None,
        })
        .collect();
    assert_eq!(fuzz.len(), 3, "one event per algorithm family");
    let total: usize = fuzz.iter().map(|f| f.cases).sum();
    assert_eq!(total, 30);
    let steps: u64 = fuzz.iter().map(|f| f.total_steps).sum();
    assert_eq!(steps, report.total_steps);
    for f in &fuzz {
        assert_eq!(f.campaign, "events-test");
        assert!(f.cases_per_sec() >= 0.0);
    }
}

/// Attaching a live-metric registry never changes the deterministic report,
/// and the `fuzz.*` metrics land exactly.
#[test]
fn telemetry_attached_campaign_reports_identically_and_counts_exactly() {
    use std::sync::Arc;
    let mk = |telemetry| CampaignConfig {
        campaign: "tel-test".to_string(),
        cases: 60,
        seed: 0x7e1e,
        jobs: Some(2),
        gen: CaseGen::standard(vec![3], 200),
        telemetry,
    };
    let plain = run_campaign(&mk(None), &mut NoProbe);
    let registry = Arc::new(fa_obs::MetricRegistry::new());
    let probed = run_campaign(&mk(Some(Arc::clone(&registry))), &mut NoProbe);

    assert_eq!(plain.cases, probed.cases);
    assert_eq!(plain.total_steps, probed.total_steps);
    assert_eq!(plain.violations, probed.violations);
    assert_eq!(plain.distinct_patterns, probed.distinct_patterns);
    assert_eq!(plain.per_algo, probed.per_algo);

    let snap = registry.sample(0, None);
    assert_eq!(snap.counter("fuzz.cases_done"), 60);
    assert_eq!(snap.counter("fuzz.steps_total"), probed.total_steps);
    assert_eq!(
        snap.counter("fuzz.violations"),
        probed.violations.len() as u64
    );
    let generate = snap.phases.get("fuzz.generate").expect("generate span");
    assert_eq!(generate.calls, 60);
    let execute = snap.phases.get("fuzz.execute").expect("execute span");
    assert_eq!(execute.calls, 60);
    let steps = snap.quantiles.get("fuzz.case_steps").expect("histogram");
    assert_eq!(steps.count, 60);
    assert!(steps.p50 > 0, "cases take steps");
}

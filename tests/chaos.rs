//! Chaos integration (E20): the failure-injection assertions of
//! `tests/failure_injection.rs`, ported from the deterministic executor's
//! `CrashingScheduler` to *real OS threads* via `fa_memory::chaos`. Crashes
//! here are actual dead or forever-parked threads, poised crashes are real
//! coverings (a thread parked with a pending write), and supervision must
//! return structured outcomes without ever hanging.
//!
//! Plans are fixed-seed; deadlines are generous so loaded CI runners never
//! flake — the scenarios complete in milliseconds on an idle machine.

use std::time::Duration;

use fa_core::{BackoffArbiter, ConsensusProcess, RenamingProcess, SnapRegister, SnapshotProcess};
use fa_memory::chaos::{run_chaos, ChaosConfig, FaultPlan};
use fa_memory::threaded::ProcOutcome;
use fa_memory::Wiring;
use rand::SeedableRng;

fn wirings(n: usize, seed: u64) -> Vec<Wiring> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| Wiring::random(n, &mut rng)).collect()
}

fn config() -> ChaosConfig {
    ChaosConfig::new(50_000_000).with_deadline(Duration::from_secs(120))
}

/// The acceptance scenario: ⌈n/2⌉ = 3 of 5 snapshot processors crash on
/// real threads — two crash-stop, one parks *poised mid-write* (a live
/// covering) — and every survivor still terminates with a valid view.
#[test]
fn threaded_snapshot_survivors_terminate_despite_crashes() {
    for seed in 0..3u64 {
        let n = 5;
        let procs: Vec<SnapshotProcess<u32>> =
            (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
        let plan = FaultPlan::new(n)
            .crash_stop(1, 3)
            .crash_stop(3, 0)
            .crash_poised(4, 2);
        let report = run_chaos(
            procs,
            wirings(n, seed),
            n,
            SnapRegister::default(),
            &plan,
            &config(),
        )
        .unwrap();
        // Per-processor outcomes, not one opaque bool.
        assert!(
            matches!(
                report.outcomes[1],
                ProcOutcome::Crashed { covering: None, .. }
            ),
            "seed {seed}: {:?}",
            report.outcomes[1]
        );
        assert_eq!(
            report.outcomes[3],
            ProcOutcome::Crashed {
                after_ops: 0,
                covering: None
            },
            "seed {seed}"
        );
        assert!(
            matches!(
                report.outcomes[4],
                ProcOutcome::Crashed {
                    covering: Some(_),
                    ..
                }
            ),
            "seed {seed}: p4 must park poised ({:?})",
            report.outcomes[4]
        );
        assert_eq!(report.covered_registers().len(), 1, "seed {seed}");
        // Every survivor produced a valid snapshot output.
        for p in [0usize, 2] {
            assert!(
                report.outcomes[p].is_completed(),
                "seed {seed}: survivor p{p} must terminate ({:?})",
                report.outcomes[p]
            );
            assert_eq!(report.outputs[p].len(), 1, "seed {seed}");
            assert!(report.outputs[p][0].contains(&(p as u32)), "seed {seed}");
        }
        // Survivor views remain pairwise comparable.
        assert!(
            report.outputs[0][0].comparable(&report.outputs[2][0]),
            "seed {seed}: {} vs {}",
            report.outputs[0][0],
            report.outputs[2][0]
        );
    }
}

/// A thread parked forever holding a pending write — a real covering — must
/// not block the other processors' renaming.
#[test]
fn threaded_poised_covering_does_not_block_renaming() {
    for seed in 0..3u64 {
        let n = 4;
        let procs: Vec<RenamingProcess<u32>> =
            (0..n as u32).map(|x| RenamingProcess::new(x, n)).collect();
        // p0 parks at its first write after one completed operation.
        let plan = FaultPlan::new(n).crash_poised(0, 1);
        let report = run_chaos(
            procs,
            wirings(n, seed + 50),
            n,
            SnapRegister::default(),
            &plan,
            &config(),
        )
        .unwrap();
        assert!(
            matches!(
                report.outcomes[0],
                ProcOutcome::Crashed {
                    covering: Some(_),
                    ..
                }
            ),
            "seed {seed}: {:?}",
            report.outcomes[0]
        );
        let mut names = Vec::new();
        for p in 1..n {
            assert!(
                report.outcomes[p].is_completed(),
                "seed {seed}: survivor p{p} must rename ({:?})",
                report.outcomes[p]
            );
            names.push(report.outputs[p][0]);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            n - 1,
            "seed {seed}: survivors take distinct names"
        );
        // The crashed p0 participated (it wrote), so the adaptive bound
        // counts M = n participants.
        let bound = n * (n + 1) / 2;
        assert!(
            names.iter().all(|&x| (1..=bound).contains(&x)),
            "seed {seed}: {names:?}"
        );
    }
}

/// Obstruction-freedom turned on its head, on real threads: crashes remove
/// contention, so the sole survivor must decide.
#[test]
fn threaded_consensus_decides_when_rivals_crash() {
    let n = 4;
    let procs: Vec<ConsensusProcess<u32>> = (0..n as u32)
        .map(|x| ConsensusProcess::new(10 + x, n))
        .collect();
    let plan = FaultPlan::new(n)
        .crash_stop(0, 5)
        .crash_stop(1, 9)
        .crash_stop(3, 2);
    let report = run_chaos(
        procs,
        wirings(n, 7),
        n,
        SnapRegister::default(),
        &plan,
        &config(),
    )
    .unwrap();
    assert!(
        report.outcomes[2].is_completed(),
        "solo survivor decides ({:?})",
        report.outcomes[2]
    );
    let d = report.outputs[2][0];
    assert!((10..14).contains(&d), "decision is a proposed value");
}

/// The stall-storm acceptance scenario: injected stalls repeatedly preempt
/// consensus processors, and the backoff arbiter still gets everyone to one
/// common decision — with attempt/backoff telemetry readable afterwards.
#[test]
fn threaded_consensus_agrees_under_stall_storm_with_backoff() {
    let n = 4;
    let inputs = [10u32, 20, 30, 40];
    let procs: Vec<ConsensusProcess<u32>> = inputs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            ConsensusProcess::new(x, n).with_backoff(BackoffArbiter::new(
                i as u64,
                Duration::from_micros(20),
                Duration::from_millis(5),
            ))
        })
        .collect();
    let stats: Vec<_> = procs
        .iter()
        .map(|p| p.backoff_stats().expect("arbiter attached"))
        .collect();
    let plan = FaultPlan::new(n)
        .stall_every(1, 3, Duration::from_micros(200))
        .stall_every(2, 4, Duration::from_micros(150));
    let report = run_chaos(
        procs,
        wirings(n, 13),
        n,
        SnapRegister::default(),
        &plan,
        &config(),
    )
    .unwrap();
    assert!(
        report.all_completed(),
        "all must decide despite the storm ({:?})",
        report.outcomes
    );
    let decisions: Vec<u32> = report.outputs.iter().map(|os| os[0]).collect();
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "agreement: {decisions:?}"
    );
    assert!(inputs.contains(&decisions[0]), "validity: {decisions:?}");
    // The arbiters were exercised and their telemetry is visible.
    assert!(stats.iter().all(|s| s.attempts() > 0));
}

/// Cyclic-shift wirings (the covering adversary's favorite) plus a
/// real-thread crash: survivors still terminate.
#[test]
fn threaded_cyclic_wirings_survive_crashes() {
    let n = 4;
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
    let cyclic: Vec<Wiring> = (0..n).map(|i| Wiring::cyclic_shift(n, i)).collect();
    let plan = FaultPlan::new(n).crash_stop(3, 2);
    let report = run_chaos(procs, cyclic, n, SnapRegister::default(), &plan, &config()).unwrap();
    for p in 0..3 {
        assert!(
            report.outcomes[p].is_completed(),
            "survivor p{p} terminates ({:?})",
            report.outcomes[p]
        );
        assert_eq!(report.outputs[p].len(), 1);
    }
}

/// An injected panic inside `Process::step` is contained as a structured
/// outcome; the other processors still solve the task.
#[test]
fn threaded_injected_panic_is_contained() {
    let n = 3;
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
    let plan = FaultPlan::new(n).panic_at(1, 2);
    let report = run_chaos(
        procs,
        wirings(n, 99),
        n,
        SnapRegister::default(),
        &plan,
        &config(),
    )
    .unwrap();
    assert!(
        matches!(report.outcomes[1], ProcOutcome::Panicked { .. }),
        "{:?}",
        report.outcomes[1]
    );
    for p in [0usize, 2] {
        assert!(
            report.outcomes[p].is_completed(),
            "{:?}",
            report.outcomes[p]
        );
        assert!(report.outputs[p][0].contains(&(p as u32)));
    }
    assert!(report.outputs[0][0].comparable(&report.outputs[2][0]));
}

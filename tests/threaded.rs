//! Integration (E12): the algorithms on OS threads and lock-protected
//! (atomic) registers.

use fa_core::{RenamingProcess, SnapRegister, SnapshotProcess, View};
use fa_memory::threaded::run_threaded;
use fa_memory::Wiring;
use rand::SeedableRng;

#[test]
fn threaded_snapshot_solves_the_task() {
    for seed in 0..5u64 {
        let n = 4;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let procs: Vec<SnapshotProcess<u32>> =
            (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
        let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
        let report = run_threaded(procs, wirings, n, SnapRegister::default(), 50_000_000).unwrap();
        assert!(
            report.all_completed(),
            "seed {seed}: wait-free even on real threads ({:?})",
            report.outcomes
        );
        let views: Vec<&View<u32>> = report.outputs.iter().map(|os| &os[0]).collect();
        for (i, v) in views.iter().enumerate() {
            assert!(v.contains(&(i as u32)), "seed {seed}");
            for w in &views {
                assert!(v.comparable(w), "seed {seed}: {v} vs {w}");
            }
        }
    }
}

#[test]
fn threaded_renaming_names_are_valid() {
    for seed in 0..5u64 {
        let n = 4;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed + 100);
        let procs: Vec<RenamingProcess<u32>> =
            (0..n as u32).map(|x| RenamingProcess::new(x, n)).collect();
        let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
        let report = run_threaded(procs, wirings, n, SnapRegister::default(), 50_000_000).unwrap();
        assert!(report.all_completed(), "{:?}", report.outcomes);
        let names: Vec<usize> = report.outputs.iter().map(|os| os[0]).collect();
        let bound = n * (n + 1) / 2;
        let mut seen = std::collections::BTreeSet::new();
        for name in names {
            assert!((1..=bound).contains(&name), "seed {seed}");
            assert!(
                seen.insert(name),
                "seed {seed}: distinct inputs share a name"
            );
        }
    }
}

//! Integration: the fully-anonymous snapshot (Figure 3) solves the snapshot
//! task end to end — runner API, group solvability, adversarial wirings.

use std::collections::BTreeMap;

use fa_core::runner::{run_snapshot_random, SnapshotRunConfig, WiringMode};
use fa_tasks::{check_group_solution, GroupAssignment, GroupId, Snapshot};

fn to_group_outputs(
    inputs: &[u32],
    views: &[fa_core::View<u32>],
) -> (
    GroupAssignment,
    Vec<Option<std::collections::BTreeSet<GroupId>>>,
) {
    let mut ids: BTreeMap<u32, usize> = BTreeMap::new();
    for &i in inputs {
        let next = ids.len();
        ids.entry(i).or_insert(next);
    }
    let groups = GroupAssignment::new(inputs.iter().map(|i| GroupId(ids[i])).collect());
    let outputs = views
        .iter()
        .map(|v| Some(v.iter().map(|x| GroupId(ids[&x])).collect()))
        .collect();
    (groups, outputs)
}

#[test]
fn snapshot_group_solves_across_sizes_and_wirings() {
    for n in 2..=7usize {
        for seed in 0..8u64 {
            for wiring in [WiringMode::Random, WiringMode::CyclicShifts] {
                let inputs: Vec<u32> = (0..n as u32).collect();
                let cfg = SnapshotRunConfig::new(inputs.clone())
                    .with_seed(seed)
                    .with_wiring(wiring.clone());
                let res = run_snapshot_random(&cfg).unwrap();
                let (groups, outputs) = to_group_outputs(&inputs, &res.views);
                check_group_solution(&Snapshot, &groups, &outputs)
                    .unwrap_or_else(|e| panic!("n={n} seed={seed} {wiring:?}: {e}"));
            }
        }
    }
}

#[test]
fn snapshot_with_groups_still_group_solves() {
    // Duplicated inputs = nontrivial groups.
    for seed in 0..10u64 {
        let inputs = vec![4u32, 4, 7, 7, 7, 9];
        let cfg = SnapshotRunConfig::new(inputs.clone()).with_seed(seed);
        let res = run_snapshot_random(&cfg).unwrap();
        let (groups, outputs) = to_group_outputs(&inputs, &res.views);
        check_group_solution(&Snapshot, &groups, &outputs)
            .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
    }
}

#[test]
fn snapshot_outputs_are_views_of_participants_only() {
    let inputs = vec![10u32, 20, 30, 40];
    let all: fa_core::View<u32> = inputs.iter().copied().collect();
    for seed in 0..10u64 {
        let cfg = SnapshotRunConfig::new(inputs.clone()).with_seed(seed);
        let res = run_snapshot_random(&cfg).unwrap();
        for v in &res.views {
            assert!(v.is_subset(&all));
            assert!(!v.is_empty());
        }
    }
}

#[test]
fn uses_exactly_n_registers() {
    // The algorithm is defined for N registers — the memory construction in
    // the runner uses n; this asserts the documented configuration.
    let cfg = SnapshotRunConfig::new(vec![1, 2, 3]);
    let res = run_snapshot_random(&cfg).unwrap();
    assert_eq!(res.views.len(), 3);
    assert_eq!(res.steps_per_proc.len(), 3);
}

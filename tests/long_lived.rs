//! Integration (E11): the long-lived snapshot of Section 7.

use fa_core::{LongLivedSnapshotProcess, SnapRegister, View};
use fa_memory::{Executor, ProcId, SharedMemory, Wiring};
use rand::SeedableRng;

fn run(inputs: Vec<Vec<u32>>, seed: u64) -> Executor<LongLivedSnapshotProcess<u32>> {
    let n = inputs.len();
    let procs: Vec<LongLivedSnapshotProcess<u32>> = inputs
        .into_iter()
        .map(|is| LongLivedSnapshotProcess::new(is, n))
        .collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings).unwrap();
    let mut exec = Executor::new(procs, memory).unwrap();
    exec.run_random(rand_chacha::ChaCha8Rng::seed_from_u64(seed), 50_000_000)
        .unwrap();
    exec
}

#[test]
fn section7_guarantees_hold_across_seeds() {
    for seed in 0..10u64 {
        let exec = run(vec![vec![1, 10, 100], vec![2, 20], vec![3, 30, 300]], seed);
        let legal: View<u32> = [1, 10, 100, 2, 20, 3, 30, 300].into_iter().collect();
        let mut all: Vec<View<u32>> = Vec::new();
        for p in 0..3 {
            let outs = exec.outputs(ProcId(p));
            // One output per invocation.
            assert_eq!(outs.len(), [3, 2, 3][p]);
            // Outputs only contain inputs of participating processors.
            for o in outs {
                assert!(o.is_subset(&legal), "seed {seed}");
            }
            // Each output contains all inputs the processor used so far.
            let own_inputs: Vec<u32> = match p {
                0 => vec![1, 10, 100],
                1 => vec![2, 20],
                _ => vec![3, 30, 300],
            };
            for (k, o) in outs.iter().enumerate() {
                for used in &own_inputs[..=k] {
                    assert!(o.contains(used), "seed {seed} p{p} invocation {k}");
                }
            }
            all.extend(outs.iter().cloned());
        }
        // Every two outputs, across processors and invocations, comparable.
        for a in &all {
            for b in &all {
                assert!(a.comparable(b), "seed {seed}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn long_lived_is_obstruction_free() {
    let n = 3;
    let procs = vec![
        LongLivedSnapshotProcess::new(vec![1u32, 10, 100, 1000], n),
        LongLivedSnapshotProcess::new(vec![2], n),
        LongLivedSnapshotProcess::new(vec![3], n),
    ];
    let memory =
        SharedMemory::new(n, SnapRegister::default(), vec![Wiring::identity(n); n]).unwrap();
    let mut exec = Executor::new(procs, memory).unwrap();
    // p0 solo completes all four invocations.
    exec.run_solo(ProcId(0), 10_000_000).unwrap();
    assert!(exec.is_halted(ProcId(0)));
    assert_eq!(exec.outputs(ProcId(0)).len(), 4);
}

#[test]
fn histories_satisfy_future_work_group_definition() {
    // The paper's future-work reading (Section 7): each invocation is a
    // logical processor grouped by its input value. Our long-lived snapshot
    // histories satisfy it.
    use fa_tasks::{check_long_lived_group_snapshot, Invocation};
    for seed in 0..8u64 {
        let exec = run(vec![vec![1, 10], vec![2, 20], vec![3, 30]], seed);
        let mut history = Vec::new();
        for p in 0..3 {
            let inputs = [[1u32, 10], [2, 20], [3, 30]][p];
            for (k, out) in exec.outputs(ProcId(p)).iter().enumerate() {
                history.push(Invocation::new(inputs[k], out.iter().collect()));
            }
        }
        check_long_lived_group_snapshot(&history).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

//! Statistical model checking at scopes beyond exhaustive reach: random
//! walks over the exact transition system for n = 4 and 5.

use fa_core::SnapshotProcess;
use fa_memory::Wiring;
use fa_modelcheck::simulate::random_walks;
use rand::SeedableRng;

#[test]
fn snapshot_walks_hold_at_n5_with_random_wirings() {
    let n = 5;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1234);
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let inputs: Vec<u32> = (0..n as u32).collect();
    let report = random_walks(
        || {
            inputs
                .iter()
                .map(|&x| SnapshotProcess::new(x, n))
                .collect::<Vec<_>>()
        },
        n,
        Default::default(),
        &wirings,
        if cfg!(debug_assertions) { 15 } else { 60 },
        60_000,
        99,
        |state| {
            let outs = state.first_outputs();
            for (i, a) in outs.iter().enumerate() {
                let Some(a) = a else { continue };
                if !a.contains(&(i as u32)) {
                    return Err(format!("p{i} output misses own input"));
                }
                for b in outs.iter().flatten() {
                    if !a.comparable(b) {
                        return Err("incomparable outputs".into());
                    }
                }
            }
            Ok(())
        },
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.completed_walks > 0);
}

#[test]
fn renaming_walks_hold_at_n4() {
    use fa_core::RenamingProcess;
    let n = 4;
    let wirings: Vec<Wiring> = (0..n).map(|i| Wiring::cyclic_shift(n, i)).collect();
    let inputs: Vec<u32> = (0..n as u32).collect();
    let bound = n * (n + 1) / 2;
    let report = random_walks(
        || {
            inputs
                .iter()
                .map(|&x| RenamingProcess::new(x, n))
                .collect::<Vec<_>>()
        },
        n,
        Default::default(),
        &wirings,
        if cfg!(debug_assertions) { 20 } else { 80 },
        60_000,
        5,
        |state| {
            let outs = state.first_outputs();
            for (i, a) in outs.iter().enumerate() {
                let Some(&a) = a.as_ref() else { continue };
                if a == 0 || a > bound {
                    return Err(format!("name {a} out of range"));
                }
                for (j, b) in outs.iter().enumerate() {
                    if i != j && Some(&a) == b.as_ref() {
                        return Err(format!("name collision on {a}"));
                    }
                }
            }
            Ok(())
        },
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

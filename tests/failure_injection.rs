//! Failure injection: crashed processors are just slow processors in the
//! asynchronous model, and the paper's algorithms must cope per their
//! progress guarantees — wait-freedom (snapshot, renaming) survives any
//! number of crashes; obstruction-freedom (consensus) benefits from them.

use fa_core::{ConsensusProcess, RenamingProcess, SnapRegister, SnapshotProcess};
use fa_memory::{CrashingScheduler, Executor, ProcId, RandomScheduler, SharedMemory, Wiring};
use rand::SeedableRng;

fn wirings(n: usize, seed: u64) -> Vec<Wiring> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| Wiring::random(n, &mut rng)).collect()
}

#[test]
fn snapshot_survivors_terminate_despite_crashes() {
    for seed in 0..8u64 {
        let n = 5;
        let procs: Vec<SnapshotProcess<u32>> =
            (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
        let memory = SharedMemory::new(n, SnapRegister::default(), wirings(n, seed)).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        // p1 crashes after 3 steps (possibly mid-scan, covering a register);
        // p3 never gets to run at all.
        let sched = CrashingScheduler::new(
            RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed)),
            n,
        )
        .crash_after(ProcId(1), 3)
        .crash_after(ProcId(3), 0);
        exec.run(sched, 50_000_000).unwrap();
        // All non-crashed processors terminated with valid snapshots.
        for p in [0usize, 2, 4] {
            let out = exec
                .first_output(ProcId(p))
                .unwrap_or_else(|| panic!("seed {seed}: survivor p{p} must terminate"));
            assert!(out.contains(&(p as u32)));
        }
        // Outputs of survivors remain pairwise comparable.
        let outs: Vec<_> = [0usize, 2, 4]
            .iter()
            .map(|&p| exec.first_output(ProcId(p)).unwrap())
            .collect();
        for a in &outs {
            for b in &outs {
                assert!(a.comparable(b), "seed {seed}");
            }
        }
    }
}

#[test]
fn crashed_writer_covering_a_register_does_not_block_renaming() {
    for seed in 0..8u64 {
        let n = 4;
        let procs: Vec<RenamingProcess<u32>> =
            (0..n as u32).map(|x| RenamingProcess::new(x, n)).collect();
        let memory = SharedMemory::new(n, SnapRegister::default(), wirings(n, seed + 50)).unwrap();
        let mut exec = Executor::new(procs, memory).unwrap();
        // Crash p0 right after its first write (a poised covering write
        // that never gets "cleaned up").
        let sched = CrashingScheduler::new(
            RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed)),
            n,
        )
        .crash_after(ProcId(0), 1);
        exec.run(sched, 50_000_000).unwrap();
        let mut names = Vec::new();
        for p in 1..n {
            let name = *exec
                .first_output(ProcId(p))
                .unwrap_or_else(|| panic!("seed {seed}: survivor p{p} must rename"));
            names.push(name);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            n - 1,
            "seed {seed}: survivors take distinct names"
        );
        // Adaptive bound counts *participants*: the crashed p0 may have
        // participated (it wrote), so names fit M(M+1)/2 with M = n.
        let bound = n * (n + 1) / 2;
        assert!(
            names.iter().all(|&x| (1..=bound).contains(&x)),
            "seed {seed}"
        );
    }
}

#[test]
fn consensus_decides_when_rivals_crash() {
    // Obstruction-freedom turned on its head: crashes *help* termination by
    // removing contention. All but p2 crash early; p2 must decide.
    let n = 4;
    let procs: Vec<ConsensusProcess<u32>> = (0..n as u32)
        .map(|x| ConsensusProcess::new(10 + x, n))
        .collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings(n, 7)).unwrap();
    let mut exec = Executor::new(procs, memory).unwrap();
    let sched = CrashingScheduler::new(
        RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(3)),
        n,
    )
    .crash_after(ProcId(0), 5)
    .crash_after(ProcId(1), 9)
    .crash_after(ProcId(3), 2);
    exec.run(sched, 50_000_000).unwrap();
    let d = exec
        .first_output(ProcId(2))
        .copied()
        .expect("solo survivor decides");
    assert!((10..14).contains(&d), "decision is a proposed value");
}

#[test]
fn wiring_mode_is_exercised_under_crashes_too() {
    // Cyclic-shift wirings (the covering adversary) plus crashes.
    let n = 4;
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
    let wirings: Vec<Wiring> = (0..n).map(|i| Wiring::cyclic_shift(n, i)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings).unwrap();
    let mut exec = Executor::new(procs, memory).unwrap();
    let sched = CrashingScheduler::new(
        RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(11)),
        n,
    )
    .crash_after(ProcId(3), 2);
    exec.run(sched, 50_000_000).unwrap();
    for p in 0..3 {
        assert!(
            exec.first_output(ProcId(p)).is_some(),
            "survivor p{p} terminates"
        );
    }
}

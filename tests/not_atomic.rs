//! Integration (E5): the snapshot-task solution is not an atomic memory
//! snapshot — witness search and replay.

use fa_modelcheck::atomicity::{find_non_atomic_snapshot, verify_witness};

#[test]
fn three_processor_non_atomicity_witness_exists_and_replays() {
    let inputs = [1u32, 2, 3];
    let w = find_non_atomic_snapshot(&inputs, 5_000_000).expect("witness exists");
    assert!(verify_witness(&inputs, &w));
    assert!(!w.memory_sets_seen.contains(&w.output));
}

//! Integration (E6): adaptive renaming end to end.

use std::collections::BTreeSet;

use fa_core::runner::{run_renaming_random, WiringMode};

#[test]
fn names_respect_group_bound_across_scenarios() {
    for n in 2..=6usize {
        for seed in 0..6u64 {
            let inputs: Vec<u32> = (0..n as u32).collect();
            let names =
                run_renaming_random(&inputs, seed, &WiringMode::Random, 100_000_000).unwrap();
            let bound = n * (n + 1) / 2;
            let distinct: BTreeSet<usize> = names.iter().copied().collect();
            assert_eq!(distinct.len(), n, "n={n} seed={seed}: collision");
            assert!(
                names.iter().all(|&x| (1..=bound).contains(&x)),
                "n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn adaptivity_bound_depends_on_groups_not_n() {
    // 6 processors but only 2 distinct inputs: names must fit 2·3/2 = 3.
    for seed in 0..8u64 {
        let inputs = vec![7u32, 7, 7, 9, 9, 9];
        let names = run_renaming_random(&inputs, seed, &WiringMode::Random, 100_000_000).unwrap();
        for (i, &a) in names.iter().enumerate() {
            assert!(
                (1..=3).contains(&a),
                "seed={seed}: name {a} exceeds group bound"
            );
            for (j, &b) in names.iter().enumerate() {
                if inputs[i] != inputs[j] {
                    assert_ne!(a, b, "seed={seed}: cross-group collision");
                }
            }
        }
    }
}

mod name_rule_properties {
    //! The Section 6 subtlety as executable lemmas: Bar-Noy–Dolev names
    //! derived from *group* snapshots never collide across groups, because
    //! (a) snapshots of different sizes get disjoint name ranges and
    //! (b) equal-size snapshots from different groups must be equal, where
    //! different inputs get different ranks.

    use fa_core::{RenamingProcess, View};
    use proptest::prelude::*;

    /// Builds a legal family of group-snapshot outputs: a nested chain of
    /// sets over the participating groups, where each participant's set is a
    /// chain element containing its own group.
    fn chain_outputs(group_of: &[usize], positions: &[usize]) -> Option<Vec<(usize, View<u32>)>> {
        let mut distinct: Vec<usize> = group_of.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut out = Vec::new();
        for (i, &g) in group_of.iter().enumerate() {
            let my_pos = distinct.iter().position(|&d| d == g)?;
            let len = (my_pos + 1 + positions[i] % (distinct.len() - my_pos)).min(distinct.len());
            let set: View<u32> = distinct[..len].iter().map(|&d| d as u32).collect();
            out.push((g, set));
        }
        Some(out)
    }

    proptest! {
        #[test]
        fn names_from_chain_snapshots_never_collide_across_groups(
            group_of in proptest::collection::vec(0usize..4, 2..8),
            positions in proptest::collection::vec(0usize..4, 8),
        ) {
            let outputs = chain_outputs(&group_of, &positions).unwrap();
            let names: Vec<(usize, usize)> = outputs
                .iter()
                .map(|(g, set)| {
                    (*g, RenamingProcess::name_for(set, &(*g as u32)).unwrap())
                })
                .collect();
            for (i, (ga, na)) in names.iter().enumerate() {
                for (gb, nb) in &names[i + 1..] {
                    if ga != gb {
                        prop_assert_ne!(na, nb, "cross-group name collision");
                    }
                }
            }
        }

        #[test]
        fn incomparable_same_group_snapshots_reserve_disjoint_ranges(
            shared in proptest::collection::btree_set(0u32..6, 1..4),
            a_extra in 10u32..13,
            b_extra in 20u32..23,
        ) {
            // Two same-group snapshots S∪{a}, S∪{b} are incomparable; any
            // other group's snapshot is either ⊆ S (smaller) or ⊇ S∪{a,b}
            // (larger). Name ranges: sizes |S|+1 vs ≤|S| or ≥|S|+2 — the
            // "reserved" size |S|+1 belongs to the group alone, so no
            // cross-group collision is possible.
            let s: View<u32> = shared.iter().copied().collect();
            let mut sa = s.clone();
            sa.insert(a_extra);
            let mut sb = s.clone();
            sb.insert(b_extra);
            prop_assert!(!sa.comparable(&sb));
            let z = sa.len();
            // All names from size-z snapshots live in ((z-1)z/2, z(z+1)/2].
            let lo = (z - 1) * z / 2;
            let hi = z * (z + 1) / 2;
            for set in [&sa, &sb] {
                for v in set.iter() {
                    let name = RenamingProcess::name_for(set, &v).unwrap();
                    prop_assert!(name > lo && name <= hi);
                }
            }
            // A smaller other-group snapshot (⊆ S) gets names ≤ lo.
            if !s.is_empty() {
                let name = RenamingProcess::name_for(&s, &s.iter().next().unwrap()).unwrap();
                prop_assert!(name <= lo);
            }
            // A larger one (⊇ S ∪ {a,b}) gets names > hi.
            let mut big = sa.clone();
            big.union_with(&sb);
            let name = RenamingProcess::name_for(&big, &big.iter().next().unwrap()).unwrap();
            prop_assert!(name > hi);
        }
    }
}

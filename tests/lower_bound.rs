//! Integration (E8): the Section 2.1 covering construction.

use fa_core::lower_bound::covering_demo;

#[test]
fn covering_erases_solo_information_for_all_small_n() {
    for n in 2..=8 {
        let report = covering_demo(n).unwrap();
        assert_eq!(report.registers, n - 1);
        assert!(report.erased, "n={n}");
        assert!(report.indistinguishable_to_q, "n={n}");
        // The solo processor nevertheless terminated with a legal-looking
        // output — it simply cannot have coordinated with anyone.
        assert!(report.solo_output.contains(&report.solo_input));
    }
}

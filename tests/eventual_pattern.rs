//! Integration (E2): Theorem 4.8 — stable views form a single-source DAG —
//! verified over randomized adversarial lassos with random wirings.

use fa_core::stable_view::analyze_lasso;
use fa_memory::{LassoSchedule, ProcId, Wiring};
use rand::{Rng, SeedableRng};

#[test]
fn theorem_4_8_randomized_sweep() {
    for n in 2..=5usize {
        for trial in 0..60u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64((n as u64) << 32 | trial);
            let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
            let inputs: Vec<u32> = (1..=n as u32).collect();
            // Random lasso: every processor live.
            let mut cycle: Vec<ProcId> = (0..n).map(ProcId).collect();
            for _ in 0..rng.gen_range(4..30) {
                cycle.push(ProcId(rng.gen_range(0..n)));
            }
            let prefix: Vec<ProcId> = (0..rng.gen_range(0..12))
                .map(|_| ProcId(rng.gen_range(0..n)))
                .collect();
            let sched = LassoSchedule::new(prefix, cycle);
            let report = analyze_lasso(&inputs, n, wirings, &sched, 100_000)
                .unwrap_or_else(|e| panic!("n={n} trial={trial}: {e}"));
            assert!(report.graph.is_dag(), "n={n} trial={trial}");
            assert!(
                report.graph.has_unique_source(),
                "n={n} trial={trial}: sources={:?}",
                report.graph.sources()
            );
        }
    }
}

#[test]
fn partial_liveness_still_single_source() {
    // Some processors stop after the prefix: the theorem is about live
    // processors' views only.
    for trial in 0..30u64 {
        let n = 4;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(trial);
        let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
        // p3 only acts in the prefix; p0..p2 are live.
        let prefix: Vec<ProcId> = (0..rng.gen_range(1..10)).map(|_| ProcId(3)).collect();
        let mut cycle: Vec<ProcId> = (0..3).map(ProcId).collect();
        for _ in 0..rng.gen_range(3..20) {
            cycle.push(ProcId(rng.gen_range(0..3)));
        }
        let sched = LassoSchedule::new(prefix, cycle);
        let report = analyze_lasso(&[1, 2, 3, 4], n, wirings, &sched, 100_000).unwrap();
        assert!(!report.stable_views.contains_key(&3));
        assert!(report.graph.has_unique_source(), "trial {trial}");
    }
}

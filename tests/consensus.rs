//! Integration (E7): obstruction-free consensus end to end.

use fa_core::runner::{run_consensus_random, WiringMode};

#[test]
fn agreement_validity_termination_with_solo_tail() {
    for n in 2..=5usize {
        for seed in 0..8u64 {
            let inputs: Vec<u32> = (0..n as u32).map(|i| (i + 1) * 11).collect();
            let res =
                run_consensus_random(&inputs, seed, &WiringMode::Random, 30_000 * n, 50_000_000)
                    .unwrap();
            assert!(res.all_decided, "n={n} seed={seed}");
            let d = res.decisions[0].unwrap();
            assert!(
                res.decisions.iter().all(|x| x.unwrap() == d),
                "n={n} seed={seed}: disagreement {:?}",
                res.decisions
            );
            assert!(inputs.contains(&d), "n={n} seed={seed}: invalid value {d}");
        }
    }
}

#[test]
fn identical_inputs_decide_that_input() {
    let res =
        run_consensus_random(&[42, 42, 42], 1, &WiringMode::Random, 50_000, 50_000_000).unwrap();
    assert!(res.all_decided);
    assert!(res.decisions.iter().all(|d| d.unwrap() == 42));
}

#[test]
fn covered_competitor_regression() {
    // Regression for the unseen-value subtlety (found by the model
    // checker): p0 writes its pair once; p1 overwrites it before anyone
    // reads and then runs alone. Under the naive Chandra rule p1 would
    // decide its own value at timestamp 0 while p0 — whose pair was erased —
    // later drives value 1 to a two-lead and decides differently. With the
    // unseen-values-count-as-timestamp-0 rule, both decide the same value.
    use fa_core::{ConsensusProcess, SnapRegister};
    use fa_memory::{Executor, ProcId, SharedMemory, Wiring};

    let n = 2;
    let procs = vec![ConsensusProcess::new(1u32, n), ConsensusProcess::new(2, n)];
    let memory =
        SharedMemory::new(n, SnapRegister::default(), vec![Wiring::identity(n); n]).unwrap();
    let mut exec = Executor::new(procs, memory).unwrap();
    // p0 performs exactly its first write (announcing (0,1) into r0) plus
    // one read; p1 then overwrites r0 before reading it and runs solo.
    exec.step_proc(ProcId(0)).unwrap();
    exec.step_proc(ProcId(0)).unwrap();
    exec.run_solo(ProcId(1), 10_000_000).unwrap();
    let d1 = *exec.first_output(ProcId(1)).expect("p1 decides solo");
    // Now p0 finishes.
    exec.run_solo(ProcId(0), 10_000_000).unwrap();
    let d0 = *exec.first_output(ProcId(0)).expect("p0 decides");
    assert_eq!(d0, d1, "agreement must survive the covered competitor");
}

//! Property-based tests for the group-solvability machinery (Definition 3.4).

use proptest::prelude::*;
use std::collections::BTreeSet;

use fa_tasks::{
    check_group_solution, Consensus, GroupAssignment, GroupId, SampleIter, Snapshot, Task,
};

proptest! {
    /// With singleton groups, group solvability coincides with plain task
    /// validity of the unique sample.
    #[test]
    fn singleton_groups_reduce_to_plain_checking(
        decisions in proptest::collection::vec(0usize..4, 2..5),
    ) {
        let n = decisions.len();
        let groups = GroupAssignment::singletons(n);
        let outputs: Vec<Option<GroupId>> =
            decisions.iter().map(|&d| Some(GroupId(d % n))).collect();
        let direct: fa_tasks::OutputAssignment<GroupId> = (0..n)
            .map(|i| (GroupId(i), GroupId(decisions[i] % n)))
            .collect();
        let group_result = check_group_solution(&Consensus, &groups, &outputs).is_ok();
        let direct_result = Consensus.check(&direct).is_ok();
        prop_assert_eq!(group_result, direct_result);
    }

    /// The sample count equals the product of participating group sizes.
    #[test]
    fn sample_count_formula(assignment in proptest::collection::vec(0usize..3, 1..8)) {
        let groups = GroupAssignment::new(assignment.iter().map(|&g| GroupId(g)).collect());
        let outputs: Vec<Option<usize>> = (0..assignment.len()).map(Some).collect();
        let iter = SampleIter::new(&groups, &outputs);
        let expected: usize = {
            let mut sizes = std::collections::BTreeMap::new();
            for g in &assignment {
                *sizes.entry(g).or_insert(0usize) += 1;
            }
            sizes.values().product()
        };
        prop_assert_eq!(iter.sample_count(), expected);
        prop_assert_eq!(iter.count(), expected);
    }

    /// A chain of nested snapshot outputs is always a valid group solution,
    /// whatever the group structure.
    #[test]
    fn nested_chains_always_group_solve_snapshot(
        group_of in proptest::collection::vec(0usize..3, 2..7),
        perm_seed in any::<u64>(),
    ) {
        let _n = group_of.len();
        // Build the distinct participating groups and a nested chain over
        // them: processor outputs are prefixes of the sorted group list.
        let mut distinct: Vec<usize> = group_of.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // Assign each processor a chain position (any position whose prefix
        // includes its own group).
        let mut rng_state = perm_seed;
        let mut next = move || {
            // Tiny xorshift for deterministic pseudo-choices.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let outputs: Vec<Option<BTreeSet<GroupId>>> = group_of
            .iter()
            .map(|&g| {
                let my_pos = distinct.iter().position(|&d| d == g).unwrap();
                // Any prefix length that includes my group.
                let extra = (next() as usize) % (distinct.len() - my_pos);
                let len = my_pos + 1 + extra;
                Some(distinct[..len].iter().map(|&d| GroupId(d)).collect())
            })
            .collect();
        let groups = GroupAssignment::new(group_of.iter().map(|&g| GroupId(g)).collect());
        prop_assert!(check_group_solution(&Snapshot, &groups, &outputs).is_ok());
    }
}

//! Round-trip: a probed run streamed to a `JsonlSink` can be replayed — both
//! by re-executing the recorded schedule (`fa_memory::replay`) and by feeding
//! the recorded event stream back into a fresh aggregate — and every route
//! yields the identical `RunMetrics`.

use fa_core::{SnapRegister, SnapshotProcess};
use fa_memory::{replay, Executor, SharedMemory, Wiring};
use fa_obs::{parse_jsonl, replay_events, JsonlSink, RunMetrics, Tee};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn system<Pr: fa_obs::Probe>(n: usize, probe: Pr) -> Executor<SnapshotProcess<u32>, Pr> {
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n).map(|i| SnapshotProcess::new(i as u32, n)).collect();
    let wirings: Vec<Wiring> = (0..n).map(|i| Wiring::cyclic_shift(n, i)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings).unwrap();
    Executor::with_probe(procs, memory, probe).unwrap()
}

#[test]
fn probed_run_replays_to_identical_metrics() {
    let n = 4;

    // Live run: aggregate metrics and stream JSONL, while recording a trace.
    let mut exec = system(n, Tee(RunMetrics::new(), JsonlSink::new(Vec::new())));
    exec.record_trace(true);
    exec.run_random(ChaCha8Rng::seed_from_u64(31), 10_000_000)
        .unwrap();
    assert!(exec.all_halted());
    let schedule = replay::schedule_of(exec.trace().unwrap());
    let total_steps = exec.total_steps();
    let Tee(live, sink) = exec.into_probe();
    assert!(sink.events_written() > 0);
    let stream = String::from_utf8(sink.into_inner()).unwrap();

    // Route 1: re-execute the recorded schedule against a fresh system.
    let mut exec2 = system(n, RunMetrics::new());
    exec2.run(schedule, 10_000_000).unwrap();
    assert!(exec2.all_halted());
    assert_eq!(exec2.total_steps(), total_steps);
    let reexecuted = exec2.into_probe();
    assert_eq!(
        reexecuted, live,
        "replayed schedule must reproduce the metrics"
    );

    // Route 2: rebuild the aggregate from the recorded event stream alone.
    let events = parse_jsonl(&stream).unwrap();
    let mut rebuilt = RunMetrics::new();
    replay_events(&events, &mut rebuilt);
    assert_eq!(rebuilt, live, "event stream must rebuild the metrics");

    // Sanity on what the probe actually saw.
    assert_eq!(live.total_outputs(), n as u64);
    assert!(live.peak_covering >= 1);
    assert_eq!(live.total_steps, total_steps as u64);
}

#[test]
fn unprobed_run_is_unchanged_by_instrumentation() {
    // The probe layer must be observation-only: a NoProbe run and a probed
    // run of the same seed produce identical outputs and step counts.
    let n = 4;
    let mut plain = system(n, fa_obs::NoProbe);
    plain
        .run_random(ChaCha8Rng::seed_from_u64(99), 10_000_000)
        .unwrap();

    let mut probed = system(n, RunMetrics::new());
    probed
        .run_random(ChaCha8Rng::seed_from_u64(99), 10_000_000)
        .unwrap();

    assert_eq!(plain.total_steps(), probed.total_steps());
    for i in 0..n {
        assert_eq!(
            plain.first_output(fa_memory::ProcId(i)),
            probed.first_output(fa_memory::ProcId(i))
        );
    }
}

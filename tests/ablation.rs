//! Ablation of the termination-level mechanism (Figure 3's key design
//! choice). Level n is the paper's rule; footnote 4 says n−1 suffices;
//! level 1 approximates a double collect.

use fa_core::runner::{run_snapshot_random, SnapshotRunConfig, WiringMode};
use fa_modelcheck::checks::check_snapshot_task_at_level;

#[test]
fn levels_n_and_n_minus_1_pass_exhaustively_at_n2() {
    // n = 2: level 2 (paper) and level 1 (= n−1, footnote 4).
    for level in [2usize, 1] {
        let report = check_snapshot_task_at_level(&[1, 2], level, 2_000_000).unwrap();
        assert!(
            report.violation.is_none(),
            "level {level}: {:?}",
            report.violation
        );
        assert!(report.complete);
    }
}

#[test]
fn lower_levels_terminate_faster() {
    // The safety margin costs steps: higher termination level, more steps.
    let n = 5;
    let mut means = Vec::new();
    for level in [1usize, n - 1, n] {
        let mut total = 0usize;
        let runs = 15;
        for seed in 0..runs {
            let cfg = SnapshotRunConfig::new((0..n as u32).collect())
                .with_seed(seed)
                .with_wiring(WiringMode::Random)
                .with_terminate_level(level);
            total += run_snapshot_random(&cfg).unwrap().total_steps;
        }
        means.push(total / runs as usize);
    }
    assert!(
        means[0] < means[1] && means[1] < means[2],
        "expected monotone step cost in the termination level, got {means:?}"
    );
}

#[test]
fn level_n_outputs_remain_comparable_under_stress() {
    // The paper's level guarantees pairwise comparability even under
    // adversarial cyclic wirings; stress across seeds.
    let n = 6;
    for seed in 0..10u64 {
        let cfg = SnapshotRunConfig::new((0..n as u32).collect())
            .with_seed(seed)
            .with_wiring(WiringMode::CyclicShifts);
        let res = run_snapshot_random(&cfg).unwrap();
        for a in &res.views {
            for b in &res.views {
                assert!(a.comparable(b), "seed {seed}");
            }
        }
    }
}

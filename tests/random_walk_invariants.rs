//! Randomized path invariants: properties the model checker proves
//! exhaustively at small scope, re-checked here on random walks at larger
//! scope (n up to 6), at every step of the execution.
//!
//! The per-step assertions live in [`fa_fuzz::SnapshotOracle`] — the same
//! checker the fuzz driver runs — so the random walks here and the PCT
//! campaigns in `tests/fuzz_driver.rs` enforce identical invariants.

use fa_core::{SnapRegister, SnapshotProcess};
use fa_fuzz::{Oracle, SnapshotOracle};
use fa_memory::{Executor, RandomScheduler, Scheduler, SharedMemory, Wiring};
use rand::SeedableRng;

fn snapshot_exec_with_inputs(inputs: &[u32], seed: u64) -> Executor<SnapshotProcess<u32>> {
    let n = inputs.len();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
    let procs: Vec<SnapshotProcess<u32>> =
        inputs.iter().map(|&x| SnapshotProcess::new(x, n)).collect();
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings).unwrap();
    Executor::new(procs, memory).unwrap()
}

fn snapshot_exec(n: usize, seed: u64) -> Executor<SnapshotProcess<u32>> {
    let inputs: Vec<u32> = (0..n as u32).collect();
    snapshot_exec_with_inputs(&inputs, seed)
}

/// Walks the executor under a random schedule, checking the full snapshot
/// oracle (view monotonicity, level legality, self-inclusion, output
/// comparability) after every step. Returns whether all processors halted.
fn walk_with_oracle(inputs: &[u32], seed: u64, budget: usize) -> bool {
    let mut exec = snapshot_exec_with_inputs(inputs, seed);
    let mut sched = RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed));
    let mut oracle = SnapshotOracle::new(inputs, inputs.len());
    for _ in 0..budget {
        if exec.all_halted() {
            break;
        }
        let live = exec.live_procs();
        let p = sched.next(&live).unwrap();
        exec.step_proc(p).unwrap();
        if let Err(v) = oracle.check_step(&exec, p) {
            panic!("inputs {inputs:?} seed {seed}: {v}");
        }
    }
    exec.all_halted()
}

#[test]
fn outputs_comparable_at_every_step_of_random_walks() {
    for n in 2..=6usize {
        for seed in 0..6u64 {
            let inputs: Vec<u32> = (0..n as u32).collect();
            assert!(
                walk_with_oracle(&inputs, seed, 10_000_000),
                "n={n} seed={seed}: wait-freedom"
            );
        }
    }
}

#[test]
fn views_and_levels_evolve_legally_along_paths() {
    // The level is recomputed per completed scan (min over matching
    // registers, plus one) — it may legally *fall* without resetting when
    // every register matches the shared view, which happens readily under
    // group (duplicate) inputs. An earlier version of this test asserted
    // levels only rise or reset; the fuzz campaigns falsified that with
    // all-equal inputs, so group-input walks are pinned here too.
    for seed in 0..5u64 {
        assert!(walk_with_oracle(&[0, 1, 2, 3], seed, 5_000_000), "distinct");
        assert!(walk_with_oracle(&[7, 7, 7, 7], seed, 5_000_000), "groups");
        assert!(walk_with_oracle(&[1, 2, 1, 2], seed, 5_000_000), "mixed");
    }
}

#[test]
fn executor_is_deterministic_under_a_seed() {
    // Same configuration + same seed => bit-identical traces.
    let run = |seed: u64| {
        let mut exec = snapshot_exec(4, seed);
        exec.record_trace(true);
        exec.run_random(rand_chacha::ChaCha8Rng::seed_from_u64(seed), 10_000_000)
            .unwrap();
        exec.trace().unwrap().clone()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12), "different seeds should diverge");
}

#[test]
fn replayed_counterexample_schedules_are_reproducible() {
    // Record a random run, replay its schedule, compare everything.
    let mut exec = snapshot_exec(3, 77);
    exec.record_trace(true);
    exec.run_random(rand_chacha::ChaCha8Rng::seed_from_u64(77), 10_000_000)
        .unwrap();
    let trace = exec.trace().unwrap().clone();

    let mut exec2 = snapshot_exec(3, 77);
    exec2.record_trace(true);
    exec2
        .run(fa_memory::replay::schedule_of(&trace), 10_000_000)
        .unwrap();
    assert_eq!(&trace, exec2.trace().unwrap());
    assert_eq!(exec.first_outputs(), exec2.first_outputs());
}

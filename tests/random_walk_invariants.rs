//! Randomized path invariants: properties the model checker proves
//! exhaustively at small scope, re-checked here on random walks at larger
//! scope (n up to 6), at every step of the execution.

use fa_core::{SnapRegister, SnapshotProcess, View};
use fa_memory::{Executor, ProcId, RandomScheduler, Scheduler, SharedMemory, Wiring};
use rand::SeedableRng;

fn snapshot_exec(n: usize, seed: u64) -> Executor<SnapshotProcess<u32>> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
    let procs: Vec<SnapshotProcess<u32>> =
        (0..n as u32).map(|x| SnapshotProcess::new(x, n)).collect();
    let wirings: Vec<Wiring> = (0..n).map(|_| Wiring::random(n, &mut rng)).collect();
    let memory = SharedMemory::new(n, SnapRegister::default(), wirings).unwrap();
    Executor::new(procs, memory).unwrap()
}

#[test]
fn outputs_comparable_at_every_step_of_random_walks() {
    for n in 2..=6usize {
        for seed in 0..6u64 {
            let mut exec = snapshot_exec(n, seed);
            let mut sched = RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed));
            let mut outputs: Vec<Option<View<u32>>> = vec![None; n];
            for _ in 0..10_000_000usize {
                if exec.all_halted() {
                    break;
                }
                let live = exec.live_procs();
                let p = sched.next(&live).unwrap();
                exec.step_proc(p).unwrap();
                if outputs[p.0].is_none() {
                    outputs[p.0] = exec.first_output(p).cloned();
                    // New output: must be comparable with all previous ones
                    // and contain the writer's input.
                    if let Some(v) = &outputs[p.0] {
                        assert!(v.contains(&(p.0 as u32)), "n={n} seed={seed}");
                        for o in outputs.iter().flatten() {
                            assert!(v.comparable(o), "n={n} seed={seed}");
                        }
                    }
                }
            }
            assert!(exec.all_halted(), "n={n} seed={seed}: wait-freedom");
        }
    }
}

#[test]
fn views_and_levels_evolve_legally_along_paths() {
    // Views never shrink; level jumps are only +1-from-min or reset-to-0;
    // a processor's level never exceeds n.
    for seed in 0..5u64 {
        let n = 4;
        let mut exec = snapshot_exec(n, seed);
        let mut sched = RandomScheduler::new(rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let mut last: Vec<(View<u32>, usize)> = (0..n)
            .map(|i| {
                let p = exec.process(ProcId(i));
                (p.view().clone(), p.level())
            })
            .collect();
        for _ in 0..5_000_000usize {
            if exec.all_halted() {
                break;
            }
            let live = exec.live_procs();
            let p = sched.next(&live).unwrap();
            exec.step_proc(p).unwrap();
            let proc = exec.process(p);
            let (old_view, old_level) = &last[p.0];
            assert!(old_view.is_subset(proc.view()), "seed {seed}: view shrank");
            assert!(proc.level() <= n, "seed {seed}: level above n");
            // Legal level moves: unchanged, reset to 0, or any rise (the
            // min-read+1 rule can jump by more than 1 when reading higher
            // levels).
            let l = proc.level();
            assert!(
                l == *old_level || l == 0 || l > *old_level,
                "seed {seed}: level moved {old_level} -> {l} illegally"
            );
            last[p.0] = (proc.view().clone(), l);
        }
    }
}

#[test]
fn executor_is_deterministic_under_a_seed() {
    // Same configuration + same seed => bit-identical traces.
    let run = |seed: u64| {
        let mut exec = snapshot_exec(4, seed);
        exec.record_trace(true);
        exec.run_random(rand_chacha::ChaCha8Rng::seed_from_u64(seed), 10_000_000)
            .unwrap();
        exec.trace().unwrap().clone()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12), "different seeds should diverge");
}

#[test]
fn replayed_counterexample_schedules_are_reproducible() {
    // Record a random run, replay its schedule, compare everything.
    let mut exec = snapshot_exec(3, 77);
    exec.record_trace(true);
    exec.run_random(rand_chacha::ChaCha8Rng::seed_from_u64(77), 10_000_000)
        .unwrap();
    let trace = exec.trace().unwrap().clone();

    let mut exec2 = snapshot_exec(3, 77);
    exec2.record_trace(true);
    exec2
        .run(fa_memory::replay::schedule_of(&trace), 10_000_000)
        .unwrap();
    assert_eq!(&trace, exec2.trace().unwrap());
    assert_eq!(exec.first_outputs(), exec2.first_outputs());
}

//! Integration (E10): group-solvability semantics from Section 3.2.

use std::collections::BTreeSet;

use fa_tasks::{
    check_group_solution, AdaptiveRenaming, Consensus, GroupAssignment, GroupId, SampleIter,
    Snapshot,
};

fn gset(ids: &[usize]) -> BTreeSet<GroupId> {
    ids.iter().map(|&g| GroupId(g)).collect()
}

#[test]
fn papers_example_is_a_legal_group_snapshot() {
    let groups = GroupAssignment::new(vec![GroupId(0), GroupId(1), GroupId(1), GroupId(2)]);
    let outputs = vec![
        Some(gset(&[0, 1, 2])),
        Some(gset(&[0, 1])),
        Some(gset(&[1, 2])),
        Some(gset(&[0, 1, 2])),
    ];
    let checked = check_group_solution(&Snapshot, &groups, &outputs).unwrap();
    assert_eq!(checked, 2, "one sample per member of group B");
}

#[test]
fn incomparability_across_groups_is_rejected() {
    let groups = GroupAssignment::new(vec![GroupId(0), GroupId(1)]);
    let outputs = vec![Some(gset(&[0])), Some(gset(&[1]))];
    assert!(check_group_solution(&Snapshot, &groups, &outputs).is_err());
}

#[test]
fn group_consensus_requires_agreement_only_across_samples() {
    // Members of one group disagreeing is fine as long as each sample (one
    // representative per group) is constant and valid.
    let groups = GroupAssignment::new(vec![GroupId(0), GroupId(0), GroupId(1)]);
    // Group 0's members decide differently; but every sample mixes one of
    // them with group 1's decision.
    let outputs = vec![Some(GroupId(1)), Some(GroupId(1)), Some(GroupId(1))];
    assert!(check_group_solution(&Consensus, &groups, &outputs).is_ok());

    let outputs = vec![Some(GroupId(0)), Some(GroupId(1)), Some(GroupId(1))];
    // Sample picking p0 gives {g0 -> g0, g1 -> g1}: disagreement.
    assert!(check_group_solution(&Consensus, &groups, &outputs).is_err());
}

#[test]
fn renaming_same_group_may_share_names() {
    let groups = GroupAssignment::new(vec![GroupId(0), GroupId(0), GroupId(1)]);
    // Both members of group 0 take name 1; group 1 takes 2. Every sample has
    // distinct names.
    let outputs = vec![Some(1usize), Some(1), Some(2)];
    assert!(check_group_solution(&AdaptiveRenaming::quadratic(), &groups, &outputs).is_ok());

    // Cross-group sharing is rejected.
    let outputs = vec![Some(1usize), Some(3), Some(1)];
    assert!(check_group_solution(&AdaptiveRenaming::quadratic(), &groups, &outputs).is_err());
}

#[test]
fn sample_space_size_is_product_of_group_sizes() {
    let groups = GroupAssignment::new(vec![
        GroupId(0),
        GroupId(0),
        GroupId(0),
        GroupId(1),
        GroupId(1),
        GroupId(2),
    ]);
    let outputs: Vec<Option<usize>> = (0..6).map(|i| Some(i + 1)).collect();
    let iter = SampleIter::new(&groups, &outputs);
    assert_eq!(iter.sample_count(), 3 * 2);
    assert_eq!(iter.count(), 6);
}

#[test]
fn partial_participation_checks_only_participants() {
    let groups = GroupAssignment::new(vec![GroupId(0), GroupId(1), GroupId(2)]);
    // Only groups 0 and 2 participate; their outputs reference only
    // participating groups.
    let outputs = vec![Some(gset(&[0])), None, Some(gset(&[0, 2]))];
    assert!(check_group_solution(&Snapshot, &groups, &outputs).is_ok());

    // Referencing the absent group 1 is a violation.
    let outputs = vec![Some(gset(&[0, 1])), None, Some(gset(&[0, 1, 2]))];
    assert!(check_group_solution(&Snapshot, &groups, &outputs).is_err());
}

//! Integration (E3): native replay of the paper's TLC checks at small scope.
//! The heavier 3-processor sweep lives in the `check_snapshot` binary.

use fa_memory::Wiring;
use fa_modelcheck::checks::{
    check_consensus_safety, check_renaming, check_snapshot_task, check_snapshot_task_with,
    check_snapshot_wait_freedom,
};
use fa_modelcheck::CheckConfig;

#[test]
fn snapshot_task_exhaustive_n2() {
    let report = check_snapshot_task(&[1, 2], 2_000_000).unwrap();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
    assert_eq!(report.combos, 2);
}

#[test]
fn snapshot_task_exhaustive_n2_same_group() {
    let report = check_snapshot_task(&[9, 9], 2_000_000).unwrap();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

#[test]
fn snapshot_task_report_is_identical_across_job_counts() {
    // The parallel sweep must be observationally serial: the deterministic
    // report (combos attempted, states, completeness, selected violation)
    // may not depend on the worker count.
    let serial = check_snapshot_task_with(&[1, 2], 2_000_000, &CheckConfig::serial())
        .unwrap()
        .report;
    for jobs in [2, 3, 8] {
        let parallel =
            check_snapshot_task_with(&[1, 2], 2_000_000, &CheckConfig::default().with_jobs(jobs))
                .unwrap()
                .report;
        assert_eq!(serial, parallel, "report diverged at jobs={jobs}");
    }
}

#[test]
fn renaming_exhaustive_n2() {
    let report = check_renaming(&[1, 2], 2_000_000).unwrap();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.complete);
}

#[test]
fn consensus_safety_bounded_n2() {
    let report = check_consensus_safety(&[1, 2], 500_000, 150).unwrap();
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn wait_freedom_certificate_n2_all_wirings() {
    for combo in fa_modelcheck::wirings::combinations_mod_relabeling(2, 2) {
        let report = check_snapshot_wait_freedom(&[1, 2], combo.clone(), 1_000_000, 200).unwrap();
        assert!(
            report.violation.is_none(),
            "combo {combo:?}: {:?}",
            report.violation
        );
        assert!(report.complete);
    }
}

#[test]
fn snapshot_task_one_adversarial_combo_n3_bounded_fine_grain() {
    // One fixed 3-processor wiring combo at per-read granularity. The full
    // fine-grained space exceeds laptop-scale exhaustion, so this run is
    // bounded: no violation within the explored prefix. The *complete*
    // 3-processor sweep runs at the paper's own TLC granularity (whole
    // scans atomic) — see `snapshot_task_coarse_n3_one_combo` and the
    // check_snapshot binary.
    use fa_core::SnapshotProcess;
    use fa_modelcheck::Explorer;

    let inputs = [1u32, 2, 3];
    let wirings = vec![
        Wiring::from_perm(vec![1, 2, 0]).unwrap(),
        Wiring::identity(3),
        Wiring::identity(3),
    ];
    let procs: Vec<SnapshotProcess<u32>> =
        inputs.iter().map(|&x| SnapshotProcess::new(x, 3)).collect();
    // Debug builds explore ~20× slower; scale the bounded budget so plain
    // `cargo test` stays snappy while `--release` covers more.
    let budget = if cfg!(debug_assertions) {
        40_000
    } else {
        300_000
    };
    let explorer = Explorer::new(procs, 3, Default::default(), wirings).with_max_states(budget);
    let report = explorer.run(|state| {
        let outputs = state.first_outputs();
        for (i, o) in outputs.iter().enumerate() {
            let Some(v) = o else { continue };
            if !v.contains(&inputs[i]) {
                return Err(format!("p{i} output misses own input"));
            }
            for w in outputs.iter().flatten() {
                if !v.comparable(w) {
                    return Err("incomparable outputs".to_string());
                }
            }
        }
        Ok(())
    });
    assert!(
        report.violation.is_none(),
        "{:?}",
        report.violation.map(|v| v.message)
    );
    assert!(
        report.states >= budget,
        "expected to fill the bounded budget"
    );
}

#[test]
fn snapshot_task_coarse_n3_one_combo_bounded() {
    // The paper's TLC granularity (scan blocks atomic): one combo, bounded
    // at 1.5M states (the full space needs server-scale state storage like
    // the authors' TLC run; no violation anywhere in the explored space).
    use fa_core::SnapshotProcess;
    use fa_modelcheck::Explorer;

    let inputs = [1u32, 2, 3];
    let wirings = vec![
        Wiring::from_perm(vec![1, 2, 0]).unwrap(),
        Wiring::identity(3),
        Wiring::identity(3),
    ];
    let procs: Vec<SnapshotProcess<u32>> =
        inputs.iter().map(|&x| SnapshotProcess::new(x, 3)).collect();
    let coarse_budget = if cfg!(debug_assertions) {
        60_000
    } else {
        1_500_000
    };
    let explorer = Explorer::new(procs, 3, Default::default(), wirings)
        .with_coarse_scans()
        .with_max_states(coarse_budget);
    let report = explorer.run(|state| {
        let outputs = state.first_outputs();
        for (i, o) in outputs.iter().enumerate() {
            let Some(v) = o else { continue };
            if !v.contains(&inputs[i]) {
                return Err(format!("p{i} output misses own input"));
            }
            for w in outputs.iter().flatten() {
                if !v.comparable(w) {
                    return Err("incomparable outputs".to_string());
                }
            }
        }
        Ok(())
    });
    assert!(
        report.violation.is_none(),
        "{:?}",
        report.violation.map(|v| v.message)
    );
    assert!(
        report.states >= coarse_budget,
        "expected to fill the bounded budget"
    );
}

#[test]
fn snapshot_algorithm_does_not_solve_immediate_snapshot() {
    // Section 9: immediate snapshot is not group-solvable under processor
    // anonymity (Gafni 2004), hence not in the fully-anonymous model. As a
    // concrete data point, the paper's snapshot algorithm violates the
    // *immediacy* condition (`b ∈ o[a]` implies `o[b] ⊆ o[a]`) in a
    // reachable execution, constructed deterministically below:
    // p0 outputs {1,2}; later p1 (whose group is in p0's output) absorbs
    // p2's 3 and outputs {1,2,3} ⊄ {1,2}. The outputs still form a valid
    // *group snapshot* (a chain) — immediacy is the extra condition that
    // fails.
    use fa_core::{SnapshotProcess, View};
    use fa_memory::{Executor, ProcId, SharedMemory};
    use fa_tasks::{GroupId, ImmediateSnapshot, Snapshot, Task};
    use std::collections::BTreeMap;

    let n = 3;
    let wirings = vec![
        Wiring::cyclic_shift(3, 1), // p0 writes r1, r2, r0, …
        Wiring::identity(3),        // p1 writes r0, r1, r2, …
        Wiring::identity(3),
    ];
    let procs: Vec<SnapshotProcess<u32>> = [1u32, 2, 3]
        .iter()
        .map(|&x| SnapshotProcess::new(x, n))
        .collect();
    let memory = SharedMemory::new(n, Default::default(), wirings).unwrap();
    let mut exec = Executor::new(procs, memory).unwrap();

    // p1 announces {2} into r0; p0 then runs solo: its first write targets
    // r1, so it reads {2} before ever covering r0, and terminates with
    // output exactly {1,2}.
    exec.step_proc(ProcId(1)).unwrap();
    exec.run_solo(ProcId(0), 1_000_000).unwrap();
    assert_eq!(
        exec.first_output(ProcId(0)),
        Some(&[1u32, 2].into_iter().collect::<View<u32>>())
    );
    // p2 runs solo (absorbing {1,2}, adding 3), then p1 finishes.
    exec.run_solo(ProcId(2), 1_000_000).unwrap();
    exec.run_solo(ProcId(1), 1_000_000).unwrap();
    let outputs: Vec<View<u32>> = (0..n)
        .map(|i| exec.first_output(ProcId(i)).unwrap().clone())
        .collect();

    let assignment: BTreeMap<GroupId, std::collections::BTreeSet<GroupId>> = outputs
        .iter()
        .enumerate()
        .map(|(i, o)| {
            (
                GroupId(i),
                o.iter().map(|v| GroupId(v as usize - 1)).collect(),
            )
        })
        .collect();
    // A valid snapshot-task solution…
    Snapshot
        .check(&assignment)
        .expect("the outputs form a chain");
    // …that is not an immediate snapshot.
    let err = ImmediateSnapshot.check(&assignment).unwrap_err();
    assert!(err.to_string().contains("immediacy"), "{err}");
}

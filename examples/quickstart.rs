//! Quickstart: solve the snapshot task among anonymous processors over
//! anonymous memory, then check the result against the task specification.
//!
//! Run with: `cargo run --example quickstart`

use fa_repro::core::runner::{run_snapshot_random, SnapshotRunConfig, WiringMode};

fn main() {
    // Four processors with inputs 10, 20, 30, 40. Nobody has an identity;
    // each is wired to the four shared registers by a hidden random
    // permutation; the schedule is a seeded random adversary.
    let cfg = SnapshotRunConfig::new(vec![10, 20, 30, 40])
        .with_seed(2024)
        .with_wiring(WiringMode::Random);
    let result = run_snapshot_random(&cfg).expect("the algorithm is wait-free");

    println!("snapshot outputs (one per processor):");
    for (i, view) in result.views.iter().enumerate() {
        println!("  processor {i} (input {}): {view}", cfg.inputs()[i]);
    }
    println!("total simulated steps: {}", result.total_steps);

    // The snapshot task (Definition 3.2): own input present, outputs
    // pairwise related by containment.
    for (i, view) in result.views.iter().enumerate() {
        assert!(view.contains(&cfg.inputs()[i]));
        for other in &result.views {
            assert!(view.comparable(other));
        }
    }
    println!("snapshot task verified: all outputs containment-related ✓");
}

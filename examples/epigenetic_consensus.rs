//! The motivating scenario behind the fully-anonymous model (Rashid,
//! Taubenfeld & Bar-Joseph's epigenetic consensus): identical cellular
//! agents must agree on a modification state by reading and writing genome
//! sites, with no agent identities and no shared naming of the sites.
//!
//! We cast each agent as an anonymous processor proposing its locally
//! sensed state (`0` = unmethylated, `1` = methylated) and run the paper's
//! obstruction-free consensus over anonymous registers ("sites"). The
//! environment eventually quiesces (the solo tail), at which point every
//! agent settles on the same state.
//!
//! Run with: `cargo run --example epigenetic_consensus`

use fa_repro::core::runner::{run_consensus_random, WiringMode};

fn main() {
    let agents = 6;
    // Noisy initial senses: agents disagree about the desired mark.
    let senses: Vec<u32> = (0..agents).map(|i| u32::from(i % 3 == 0)).collect();
    println!("agents' initial senses: {senses:?} (1 = methylated)");

    let mut decided_runs = 0;
    for trial in 0..10u64 {
        let res = run_consensus_random(
            &senses,
            trial,
            &WiringMode::Random, // sites have no common naming
            100_000,             // contention phase
            50_000_000,          // quiescent tail: obstruction-freedom kicks in
        )
        .expect("run completes");
        assert!(
            res.all_decided,
            "trial {trial}: quiescence forces a decision"
        );
        let mark = res.decisions[0].expect("decided");
        assert!(
            res.decisions.iter().all(|d| d.unwrap() == mark),
            "trial {trial}: cells disagree — organism-level inconsistency!"
        );
        assert!(
            senses.contains(&mark),
            "trial {trial}: decided an unsensed state"
        );
        decided_runs += 1;
        println!("trial {trial}: all {agents} agents settled on mark {mark}");
    }
    println!("\n{decided_runs}/10 trials reached a uniform epigenetic state ✓");
}

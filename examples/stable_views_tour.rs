//! A tour of the eventual pattern (Section 4): build the paper's Figure 2
//! execution, watch two processors keep incomparable views forever, and
//! verify the stable-view graph is a DAG with a unique source.
//!
//! Run with: `cargo run --example stable_views_tour`

use fa_repro::core::figure2::{core_schedule, core_wirings, run_figure2};
use fa_repro::core::stable_view::analyze_lasso;

fn main() {
    println!("Figure 2, rows 1–13 (registers r1–r3 and views after each row):\n");
    for row in run_figure2().expect("construction runs") {
        println!(
            "row {:>2}: {:<42} r=[{} {} {}]  views=[{} {} {}]",
            row.row,
            row.action,
            row.registers[0],
            row.registers[1],
            row.registers[2],
            row.views[0],
            row.views[1],
            row.views[2],
        );
    }

    println!("\nAnalyzing the infinite continuation (rows 5–13 repeat forever)…");
    let report = analyze_lasso(&[1, 2, 3], 3, core_wirings(), &core_schedule(), 1000)
        .expect("the lasso stabilizes");
    println!(
        "stable views: {:?}",
        report
            .graph
            .vertices()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!("edges (strict containment): {:?}", report.graph.edges());
    println!("is a DAG: {}", report.graph.is_dag());
    println!(
        "unique source: {} (the source is {})",
        report.graph.has_unique_source(),
        report.graph.sources()[0]
    );
    println!(
        "\np2 and p3 hold {} and {} forever — incomparable, exactly as the paper shows.",
        report.stable_views[&1], report.stable_views[&2]
    );
}

//! Using the model checker as a library: exhaustively explore every
//! interleaving and wiring of a 2-processor snapshot system and print the
//! state-space statistics — the paper's TLC experiment at your fingertips.
//!
//! Run with: `cargo run --release --example explore_interleavings`

use fa_repro::core::SnapshotProcess;
use fa_repro::modelcheck::wirings::combinations_mod_relabeling;
use fa_repro::modelcheck::Explorer;

fn main() {
    let inputs = [7u32, 9];
    let n = inputs.len();
    println!("exploring all interleavings × wirings for inputs {inputs:?}…\n");
    let mut total = 0usize;
    for combo in combinations_mod_relabeling(n, n) {
        let procs: Vec<SnapshotProcess<u32>> =
            inputs.iter().map(|&x| SnapshotProcess::new(x, n)).collect();
        let labels: Vec<String> = combo.iter().map(|w| w.to_string()).collect();
        let explorer = Explorer::new(procs, n, Default::default(), combo);
        let report = explorer.run(|state| {
            // Invariant: any two outputs produced so far are comparable.
            let outs = state.first_outputs();
            for a in outs.iter().flatten() {
                for b in outs.iter().flatten() {
                    if !a.comparable(b) {
                        return Err("incomparable snapshot outputs".into());
                    }
                }
            }
            Ok(())
        });
        println!(
            "wirings {labels:?}: {} states, {} terminal, complete={}, violation={}",
            report.states,
            report.terminal_states,
            report.complete,
            report.violation.map_or("none".to_string(), |v| v.message),
        );
        total += report.states;
    }
    println!("\ntotal distinct states across wiring classes: {total}");
}

//! Adaptive renaming in the field: a batch of identical, unconfigured
//! sensors wakes up attached to a shared bus of anonymous mailboxes and must
//! claim distinct transmission slots. Sensors of the same hardware revision
//! (= group) may share a slot; different revisions must not collide.
//!
//! This is the renaming task under group solvability (Section 6): with `M`
//! participating revisions the slots fit in `1..=M(M+1)/2`, adaptively —
//! the sensors never need to know how many sensors exist.
//!
//! Run with: `cargo run --example sensor_slots`

use std::collections::BTreeSet;

use fa_repro::core::runner::{run_renaming_random, WiringMode};

fn main() {
    // Eight sensors of three hardware revisions.
    let revisions = vec![100u32, 100, 200, 200, 200, 300, 300, 100];
    println!("sensor revisions: {revisions:?}");

    let slots = run_renaming_random(&revisions, 7, &WiringMode::Random, 200_000_000)
        .expect("renaming is wait-free");
    println!("claimed slots:    {slots:?}");

    let groups: BTreeSet<u32> = revisions.iter().copied().collect();
    let m = groups.len();
    let bound = m * (m + 1) / 2;
    println!("{} revisions participate → slots must fit 1..={bound}", m);

    for (i, &slot) in slots.iter().enumerate() {
        assert!(
            (1..=bound).contains(&slot),
            "slot out of the adaptive range"
        );
        for (j, &other) in slots.iter().enumerate() {
            if revisions[i] != revisions[j] {
                assert_ne!(slot, other, "sensors of different revisions collided");
            }
        }
    }
    println!("no cross-revision collision; all slots within the adaptive bound ✓");
}

//! Vendored offline stand-in for `rand_chacha`: a [`ChaCha8Rng`] built on a
//! genuine ChaCha8 keystream. Deterministic under
//! [`SeedableRng::seed_from_u64`]; the stream is *not* guaranteed to match
//! the upstream crate bit-for-bit (nothing in this workspace depends on
//! that), only to be a high-quality deterministic PRNG.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher core with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// nonce (zero).
    key: [u32; 8],
    counter: u64,
    /// Buffered keystream block and read position.
    block: [u32; 16],
    pos: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // input[14..16] is the zero nonce.
        let mut state = input;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column round + diagonal round).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.block[self.pos];
        self.pos += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            pos: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn usable_as_generic_rng() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
        }
    }

    #[test]
    fn stream_distribution_sanity() {
        // Keystream words should hit all byte values quickly; a gross
        // implementation bug (e.g. never refilling) would fail this.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[(rng.next_u32() & 0xF) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Vendored offline stand-in for the `rand` crate.
//!
//! Implements exactly the API subset used by this workspace: [`RngCore`],
//! [`Rng::gen_range`] over integer ranges, [`SeedableRng`],
//! [`seq::SliceRandom`] (`shuffle`, `choose`) and [`thread_rng`]. See
//! `vendor/README.md` for the rationale.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types samplable from ranges.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

// Rejection-free uniform sampling via 128-bit multiply (Lemire-style, with
// a widening multiply; the tiny bias of the plain multiply-shift method is
// irrelevant for test/benchmark scheduling but we reject to be exact).
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                // Work in u64 offset space to handle signed types uniformly.
                let span = (high as i128 - low as i128) as u64;
                let off = uniform_u64(span, rng);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                ((low as i128) + uniform_u64(span, rng) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (e.g. `rng.gen_range(0..n)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG by expanding a `u64` with SplitMix64, matching the
    /// upstream convention of deriving the full seed deterministically.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and choosing from slices.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(i as u64 + 1, rng) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64(self.len() as u64, rng) as usize;
                self.get(i)
            }
        }
    }
}

pub mod rngs {
    //! Named RNG types.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator used for [`thread_rng`] and as
    /// `StdRng`.
    ///
    /// [`thread_rng`]: super::thread_rng
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which is a fixed point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// The RNG returned by [`thread_rng`](super::thread_rng).
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh, unpredictable-enough RNG (seeded from the system clock and a
/// per-call counter). Not cryptographic; sufficient for tests and demos.
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let uniq = COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(nanos ^ uniq.rotate_left(32)))
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = thread_rng();
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! Vendored offline stand-in for `criterion`.
//!
//! A minimal wall-clock bench harness exposing the API surface this
//! workspace's `benches/` use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `sample_size`, `bench_with_input`,
//! `bench_function`, [`BenchmarkId`], [`black_box`], and [`Bencher::iter`].
//! No statistics beyond mean/min/max per sample, no plots, no baselines —
//! it calibrates an iteration count per benchmark, times `sample_size`
//! samples, and prints one summary line each.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, preventing dead-code elimination of
/// benchmarked results.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

impl Bencher {
    /// Times `f`, storing per-iteration statistics.
    ///
    /// Calibrates an iteration count so one sample takes roughly a few
    /// milliseconds, then times `sample_size` samples of that many
    /// iterations each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find how many iterations fill ~2ms (at least 1).
        let calib_start = Instant::now();
        black_box(f());
        let first = calib_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let iters_per_sample = (target.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            means.push(elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let n = means.len().max(1) as f64;
        self.mean_ns = means.iter().sum::<f64>() / n;
        self.min_ns = means.iter().copied().fold(f64::INFINITY, f64::min);
        self.max_ns = means.iter().copied().fold(0.0, f64::max);
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        mean_ns: 0.0,
        min_ns: 0.0,
        max_ns: 0.0,
    };
    f(&mut b);
    println!(
        "{full_id:<50} time: [{} {} {}]",
        human_time(b.min_ns),
        human_time(b.mean_ns),
        human_time(b.max_ns),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (results already printed per benchmark).
    pub fn finish(self) {}
}

/// The harness entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 20, |b| f(b));
        self
    }
}

/// Defines a function running each benchmark target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = false;
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 8).id, "algo/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(group_smoke, target);

    #[test]
    fn group_macro_compiles_and_runs() {
        group_smoke();
    }
}

//! Vendored offline stand-in for `serde_json`.
//!
//! The [`Value`]/[`Map`]/[`Number`] types live in the vendored `serde` crate
//! (its traits are defined over that value model directly) and are
//! re-exported here, so `serde_json::Value` and `serde::Value` are the same
//! type. This crate adds the JSON text layer: [`to_string`] /
//! [`to_string_pretty`] printers, a recursive-descent [`from_str`] parser,
//! and the [`json!`] construction macro.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Map, Number, Value};

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                // Keep a decimal point or exponent so the text re-parses as a
                // float, matching serde_json's treatment of whole floats.
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    out.push_str(&s);
                } else {
                    let _ = write!(out, "{s}.0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input at byte {}: {:?}",
                self.pos,
                other.map(char::from)
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supports the three shapes used in this workspace: `json!(expr)` for any
/// serializable expression, `json!({ "key": expr, ... })` for flat objects,
/// and `json!([expr, ...])` for arrays. Nested braces/brackets inside an
/// object literal are *not* recursed into — pass nested structures as
/// pre-built [`Value`] expressions instead.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_printing() {
        let v = json!({"b": 1, "a": json!([1u8, 2u8]), "n": 1.5});
        let compact = to_string(&v).unwrap();
        // BTreeMap keys print sorted.
        assert_eq!(compact, r#"{"a":[1,2],"b":1,"n":1.5}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn parse_round_trips_all_shapes() {
        let src = r#"{"s": "he\"llo\n", "neg": -3, "f": 2.25e1, "null": null, "arr": [1, 2, 3], "empty": {}, "e2": []}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["s"].as_str().unwrap(), "he\"llo\n");
        assert_eq!(v["neg"].as_i64().unwrap(), -3);
        assert_eq!(v["f"].as_f64().unwrap(), 22.5);
        assert!(v["null"].is_null());
        assert_eq!(v["arr"].as_array().unwrap().len(), 3);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let pair: (u8, bool) = from_str("[7, true]").unwrap();
        assert_eq!(pair, (7, true));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, ]2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3u32), Value::Number(Number::PosInt(3)));
        let n = 4usize;
        let obj = json!({"k": n * (n + 1) / 2, "name": "t"});
        assert_eq!(obj["k"].as_u64().unwrap(), 10);
        assert_eq!(obj["name"].as_str().unwrap(), "t");
        let arr = json!([1u8, 2u8]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
        // Vec<Value> passes through as an array.
        let vs = vec![Value::Bool(true)];
        assert_eq!(json!(vs).as_array().unwrap().len(), 1);
    }

    #[test]
    fn unicode_and_control_escapes() {
        let v = Value::String("α\u{1}".to_string());
        let s = to_string(&v).unwrap();
        assert_eq!(s, "\"α\\u0001\"");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        let s = to_string(&Value::Number(Number::Float(2.0))).unwrap();
        assert_eq!(s, "2.0");
    }
}

//! Vendored offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde`'s JSON-value data model without `syn`/`quote`: the input
//! `TokenStream` is walked directly (attributes are single `#`+group token
//! pairs, bodies are single `Group` tokens, so only `<`/`>` nesting needs
//! explicit depth tracking) and the impl is emitted as a source string.
//!
//! Encoding conventions match upstream serde's JSON representation:
//! named-field structs → objects, newtype structs → the inner value, tuple
//! structs → arrays, unit structs → null, enums externally tagged
//! (`"Variant"` for unit variants, `{"Variant": ...}` otherwise).
//!
//! Unsupported (not used anywhere in this workspace): `#[serde(...)]`
//! attributes, union types, where-clauses referencing associated types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed generic parameter.
enum Param {
    /// `'a` — carried through verbatim.
    Lifetime(String),
    /// `T` or `T: Bounds` — serde bound appended in the impl.
    Type { name: String, bounds: String },
    /// `const N: usize` — declaration for the impl, name for the type.
    Const { decl: String, name: String },
}

/// Fields of a struct or of one enum variant.
enum Fields {
    Unit,
    /// Tuple fields, by count.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    params: Vec<Param>,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.body {
        Body::Struct(fields) => serialize_struct_body(fields),
        Body::Enum(variants) => serialize_enum_body(&input.name, variants),
    };
    let (impl_generics, ty_generics) = generics_strings(&input.params, "::serde::Serialize");
    let code = format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n",
        name = input.name,
    );
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.body {
        Body::Struct(fields) => deserialize_struct_body(&input.name, fields),
        Body::Enum(variants) => deserialize_enum_body(&input.name, variants),
    };
    let (impl_generics, ty_generics) = generics_strings(&input.params, "::serde::Deserialize");
    let code = format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n",
        name = input.name,
    );
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;

    let params = if is_punct(tokens.get(i), '<') {
        parse_generics(&tokens, &mut i)
    } else {
        Vec::new()
    };

    // Skip an optional where-clause (none exist in this workspace, but be safe).
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        while i < tokens.len()
            && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
        {
            if is_punct(tokens.get(i), ';') {
                break;
            }
            i += 1;
        }
    }

    let body = match kind.as_str() {
        "struct" => Body::Struct(match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found `{other:?}`"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };

    Input { name, params, body }
}

fn is_punct(t: Option<&TokenTree>, ch: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        if is_punct(tokens.get(*i), '#')
            && matches!(tokens.get(*i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 2;
            continue;
        }
        if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            *i += 1;
            if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                *i += 1;
            }
            continue;
        }
        break;
    }
}

/// Parses `<...>` starting at the `<`; leaves `i` just past the matching `>`.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<Param> {
    *i += 1; // consume `<`
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut raw_params: Vec<Vec<TokenTree>> = Vec::new();
    while *i < tokens.len() {
        let t = &tokens[*i];
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                raw_params.push(std::mem::take(&mut current));
                *i += 1;
                continue;
            }
            _ => {}
        }
        current.push(t.clone());
        *i += 1;
    }
    if !current.is_empty() {
        raw_params.push(current);
    }

    raw_params
        .into_iter()
        .filter(|p| !p.is_empty())
        .map(|p| {
            if matches!(&p[0], TokenTree::Punct(pt) if pt.as_char() == '\'') {
                Param::Lifetime(tokens_to_string(&p))
            } else if matches!(&p[0], TokenTree::Ident(id) if id.to_string() == "const") {
                let name = match &p[1] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive: expected const param name, found `{other}`"),
                };
                Param::Const {
                    decl: tokens_to_string(&p),
                    name,
                }
            } else {
                let name = match &p[0] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive: expected type param, found `{other}`"),
                };
                let bounds = if p.len() > 2 && is_punct(p.get(1), ':') {
                    tokens_to_string(&p[2..])
                } else {
                    String::new()
                };
                Param::Type { name, bounds }
            }
        })
        .collect()
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Field names from a `{ ... }` struct body, in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        }
        i += 1;
        // Skip `:` and the type, up to the next top-level comma. Groups are
        // atomic tokens, so only angle-bracket depth needs tracking.
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a `(...)` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0usize;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma: `(A, B,)` has two fields, not three.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant`, then the separating comma.
        while i < tokens.len() && !is_punct(tokens.get(i), ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `(impl_generics, ty_generics)`: `<V: Ord + BOUND>` / `<V>`, or two empty
/// strings when the type is not generic.
fn generics_strings(params: &[Param], bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_parts = Vec::new();
    let mut ty_parts = Vec::new();
    for p in params {
        match p {
            Param::Lifetime(lt) => {
                impl_parts.push(lt.clone());
                ty_parts.push(lt.clone());
            }
            Param::Type { name, bounds } => {
                if bounds.is_empty() {
                    impl_parts.push(format!("{name}: {bound}"));
                } else {
                    impl_parts.push(format!("{name}: {bounds} + {bound}"));
                }
                ty_parts.push(name.clone());
            }
            Param::Const { decl, name } => {
                impl_parts.push(decl.clone());
                ty_parts.push(name.clone());
            }
        }
    }
    (
        format!("<{}>", impl_parts.join(", ")),
        format!("<{}>", ty_parts.join(", ")),
    )
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        // Newtype structs serialize transparently as the inner value.
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Fields::Named(names) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in names {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
    }
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "if v.is_null() {{ ::core::result::Result::Ok({name}) }} else {{ \
             ::core::result::Result::Err(::serde::Error::custom(\"expected null for {name}\")) }}"
        ),
        Fields::Tuple(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}\")); }}\n\
                 ::core::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Fields::Named(names) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in names {
                // Missing members read as null so `Option` fields default to
                // `None`, matching upstream's treatment of omitted optionals.
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(obj.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                ));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{\n\
                       let mut m = ::serde::Map::new();\n\
                       m.insert(\"{vn}\".to_string(), {inner});\n\
                       ::serde::Value::Object(m)\n\
                     }}\n",
                    binds = binds.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let mut inserts = String::new();
                for f in fields {
                    inserts.push_str(&format!(
                        "inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {fields} }} => {{\n\
                       let mut inner = ::serde::Map::new();\n\
                       {inserts}\
                       let mut m = ::serde::Map::new();\n\
                       m.insert(\"{vn}\".to_string(), ::serde::Value::Object(inner));\n\
                       ::serde::Value::Object(m)\n\
                     }}\n",
                    fields = fields.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                ));
                // A unit variant may also appear tagged as `{"Variant": null}`.
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            Fields::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                       let a = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                       if a.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                       ::core::result::Result::Ok({name}::{vn}({elems}))\n\
                     }}\n",
                    elems = elems.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(obj.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                       let obj = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                       ::core::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "match v {{\n\
           ::serde::Value::String(s) => match s.as_str() {{\n\
             {unit_arms}\
             other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant {{other}}\"))),\n\
           }},\n\
           ::serde::Value::Object(m) if m.len() == 1 => {{\n\
             let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
             match tag.as_str() {{\n\
               {tagged_arms}\
               other => ::core::result::Result::Err(::serde::Error::custom(format!(\"unknown {name} variant {{other}}\"))),\n\
             }}\n\
           }},\n\
           _ => ::core::result::Result::Err(::serde::Error::custom(\"expected string or single-key object for {name}\")),\n\
         }}"
    )
}

//! Vendored offline stand-in for `parking_lot`: non-poisoning `Mutex` and
//! `RwLock` wrappers over `std::sync`. A poisoned std lock (a panic while
//! held) is treated as a bug in the protected code and unwrapped into a
//! panic, matching `parking_lot`'s no-poisoning semantics closely enough for
//! this workspace.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(3);
        *m.get_mut() = 4;
        assert_eq!(m.into_inner(), 4);
    }
}

//! Vendored offline stand-in for `serde`.
//!
//! Upstream serde abstracts over data formats; this workspace only ever
//! serializes to and from JSON (via `serde_json`), so the vendored traits
//! are defined directly over an owned JSON [`Value`] tree:
//!
//! * [`Serialize`] — convert `self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`].
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) generate field-by-field conversions matching
//! upstream serde's JSON encoding conventions: structs as objects, newtype
//! structs as their inner value, enums externally tagged.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON object representation: string keys to values, deterministic
/// (sorted) iteration order.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    /// The number as `f64` (always representable, possibly lossily).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer representations of the same value compare equal.
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The object, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a representable number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is a representable number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object member access; yields `Null` for non-objects or missing keys,
    /// matching `serde_json`'s indexing behavior.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Serialization/deserialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into an owned JSON value.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting a descriptive [`Error`] on shape or
    /// range mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::custom("expected null"))
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// Maps serialize as arrays of `[key, value]` pairs: JSON object keys must be
// strings, and this workspace's map keys are typed newtypes.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?
            .iter()
            .map(|pair| {
                let p = pair
                    .as_array()
                    .ok_or_else(|| Error::custom("expected [key, value]"))?;
                if p.len() != 2 {
                    return Err(Error::custom("expected [key, value]"));
                }
                Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
            })
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// Like upstream serde's `rc` feature: `Arc<T>` serializes as its contents.
// Deserialization allocates a fresh cell, so sharing is not round-tripped —
// fine for this workspace, where shared cells are an in-memory optimization.
impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(<()>::from_value(&().to_value()).unwrap(), ());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);

        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<u32>::from_value(&s.to_value()).unwrap(), s);

        let m: BTreeMap<u32, String> = [(1, "a".to_string())].into_iter().collect();
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap(),
            m
        );

        let o = Some(9u8);
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u8, "x".to_string(), true);
        let back = <(u8, String, bool)>::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn range_errors_are_reported() {
        let v = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&v).is_err());
        assert!(bool::from_value(&v).is_err());
    }

    #[test]
    fn value_accessors() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Bool(true));
        let v = Value::Object(m);
        assert_eq!(v["k"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
        assert!(v.get("k").is_some());
        let a = Value::Array(vec![Value::Null]);
        assert_eq!(a[0], Value::Null);
        assert_eq!(a[5], Value::Null);
    }

    #[test]
    fn mixed_number_equality() {
        assert_eq!(
            Value::Number(Number::PosInt(3)),
            Value::Number(Number::NegInt(3))
        );
        assert_ne!(
            Value::Number(Number::PosInt(3)),
            Value::Number(Number::Float(3.0))
        );
    }
}

//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] test macro
//! with `arg in strategy` bindings, integer-range / `any::<T>()` / tuple
//! strategies, `collection::{vec, btree_set}`, and the `prop_assert*`
//! macros. Each test runs a fixed number of deterministically-seeded random
//! cases (seeded per test case index, so failures are reproducible run to
//! run). Shrinking is not implemented: a failing case reports its inputs via
//! `Debug` instead of minimizing them.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test executes.
pub const DEFAULT_CASES: u64 = 96;

/// A generator of random values for one test-case binding.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a "whole domain" strategy, used via [`any`].
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The `any::<T>()` strategy: any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: a fixed length or a half-open/inclusive range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut StdRng) -> usize {
            if self.min >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)`: vectors with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of elements drawn from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(element, size)`: sets with *target* cardinality drawn from
    /// `size`. As in upstream proptest, duplicate draws may leave the set
    /// smaller than the target when the element domain is narrow.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so narrow domains terminate.
            for _ in 0..target.saturating_mul(8).saturating_add(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{SeedableRng, StdRng};
    use std::fmt;

    /// A rejected or failed test case, carrying its assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG for one case: seeded from the test name and the
    /// case index, so reruns explore identical inputs.
    #[must_use]
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported form (the only one this workspace uses):
/// `proptest! { #[test] fn name(arg in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                for case in 0..$crate::DEFAULT_CASES {
                    let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),*),
                        $(&$arg),*
                    );
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {case} of {total} failed: {e}\n  inputs: {inputs}",
                            total = $crate::DEFAULT_CASES,
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args)`: fail the
/// current case (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($a), stringify!($b), a),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: `{} != {}`: {}\n  both: {:?}",
                        stringify!($a), stringify!($b), format!($($fmt)+), a),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in 1u32..=5) {
            prop_assert!(x < 10);
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn vec_sizes_in_range(v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn fixed_size_vec(v in crate::collection::vec(0usize..4, 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn btree_set_bounds(s in crate::collection::btree_set(0u32..50, 0..10)) {
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn tuples_sample_componentwise(t in (0usize..3, 0usize..4, any::<bool>(), 0u32..100)) {
            prop_assert!(t.0 < 3 && t.1 < 4 && t.3 < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::case_rng;
        use rand::RngCore;
        let a: Vec<u64> = (0..4).map(|c| case_rng("t", c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| case_rng("t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(case_rng("t", 0).next_u64(), case_rng("u", 0).next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x < 1, "x too big");
            }
        }
        inner();
    }
}

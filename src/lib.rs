//! Meta-crate for the fully-anonymous shared-memory reproduction of Losa &
//! Gafni, *"Understanding Read-Write Wait-Free Coverings in the
//! Fully-Anonymous Shared-Memory Model"* (PODC 2024).
//!
//! Re-exports the public API of every sub-crate so examples and downstream
//! users can depend on a single crate:
//!
//! * [`memory`] — the execution model (anonymous registers, wirings,
//!   schedulers, executor, traces, threaded runtime);
//! * [`tasks`] — task specifications and the group-solvability checker;
//! * [`core`] — the paper's algorithms (write–scan, snapshot, renaming,
//!   consensus, stable-view analysis, lower bound);
//! * [`baselines`] — stronger-model comparison algorithms;
//! * [`modelcheck`] — the explicit-state model checker (TLC substitute).
//!
//! ```
//! use fa_repro::core::runner::{run_snapshot_random, SnapshotRunConfig};
//!
//! let cfg = SnapshotRunConfig::new(vec![10, 20, 30]).with_seed(7);
//! let result = run_snapshot_random(&cfg).unwrap();
//! for view in &result.views {
//!     assert!(result.views.iter().all(|w| view.comparable(w)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fa_baselines as baselines;
pub use fa_core as core;
pub use fa_memory as memory;
pub use fa_modelcheck as modelcheck;
pub use fa_tasks as tasks;

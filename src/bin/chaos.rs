//! Workspace-root alias for the E20 chaos campaign binary; see
//! `crates/bench/src/bin/chaos.rs`.

fn main() {
    let smoke = fa_bench::cli_flag("--smoke");
    let seed = fa_bench::cli_value("--seed").map_or(0, |v| {
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("--seed wants an unsigned integer, got {v:?}"))
    });
    let out = fa_bench::cli_value("--out");
    let telemetry = fa_bench::TelemetrySession::from_cli("chaos");
    fa_bench::chaos_campaign::run_campaign(smoke, seed, out.as_deref(), telemetry.registry());
    telemetry.finish();
}

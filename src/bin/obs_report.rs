//! Root-package alias for the fa-bench `obs_report` experiment, so that
//! `cargo run --bin obs_report` works from the workspace root (whose default
//! package is `fa-repro`). See [`fa_bench::obs_report`].

fn main() {
    fa_bench::obs_report::run_report(fa_bench::cli_jobs());
}
